"""Explanation-as-a-service: sharded operation pipeline over the batch engine.

This package is the serving layer over the PR-1 batch engine (see
ROADMAP.md, "Service architecture").  The pieces compose bottom-up:

* :mod:`~repro.service.batching` — bounded :class:`RequestQueue`
  (admission control / backpressure) + :class:`MicroBatcher` (the PR-2
  per-worker coalescing policy, kept as the benchmark baseline).
* :mod:`~repro.service.cache` — :class:`ResultCache`, an LRU keyed on
  ``(operation, pair)`` and invalidated wholesale by the KG / model
  version counters.
* :mod:`~repro.service.worker` — :class:`WorkerPool`, pure executor
  threads with one engine backend each (+ :class:`MicroBatchWorkerPool`,
  the PR-2 pull-based pool).
* :mod:`~repro.service.dispatch` — :class:`Dispatcher`, the central
  scheduler packing cross-worker, operation-homogeneous batches.
* :mod:`~repro.service.service` — :class:`ExplanationService` tying them
  together and the synchronous :class:`ExEAClient` facade.
* :mod:`~repro.service.sharding` — :class:`ShardRouter` +
  :class:`ShardedExplanationService` / :class:`ShardedExEAClient`:
  hash-partitioned shard groups, each with its own dispatcher, worker
  pool, cache and generation token.
* :mod:`~repro.service.stats` — :class:`ServiceStats` telemetry (hit
  rate, per-operation attribution, batch occupancy, p50/p95 latency) and
  :func:`merge_stats` / :func:`merge_raw` for overall-across-shards
  reporting.
* :mod:`~repro.service.observability` — the tracing/metrics plane:
  :class:`TraceContext` propagation through every layer and both wire
  codecs, per-process :class:`Span` rings stitched fleet-wide by
  :func:`stitch_trace`, log-bucketed per-stage histograms, the
  slow-request log, and the :func:`prometheus_text` exporter.
* :mod:`~repro.service.transport` — the process boundary:
  :class:`ShardServer` hosts one shard group per server process and
  :class:`RemoteShardedClient` speaks the same client facade to a
  cluster of them over length-prefixed JSON frames
  (:class:`LocalShardCluster` spawns such a cluster locally).
* :mod:`~repro.service.cluster` — the control plane over that transport:
  a declarative :class:`ClusterTopology` (shard → replica endpoints +
  weights), :class:`ClusterManager` health checking with a
  consecutive-miss failure detector publishing a versioned routing
  table, and :class:`ClusterClient` routing reads to healthy replicas by
  load score with idempotent failover retry
  (:class:`ReplicatedLocalCluster` spawns R replicas per shard locally).

``python -m repro.service`` serves a scripted traffic replay against a
registry dataset end to end (``--shards N`` fans the pipeline out);
``python -m repro.service serve`` / ``connect`` / ``cluster`` run the
remote transport and the replicated control plane (see
``docs/OPERATIONS.md``).
"""

from .batching import MicroBatcher, RequestQueue, ServiceRequest
from .cache import ResultCache
from .cluster import (
    ClusterClient,
    ClusterManager,
    ClusterTopology,
    RebalanceConfig,
    ReplicaSpec,
    ReplicatedLocalCluster,
    RoutingTable,
    TopologyError,
    WeightConfig,
    WeightController,
    load_topology,
    parse_topology,
    replay_cluster_concurrently,
)
from .config import ServiceConfig
from .dispatch import Dispatcher
from .errors import (
    DeadlineExceededError,
    RemoteOperationError,
    RemoteTransportError,
    ReplicaBehindError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
)
from .observability import (
    Span,
    SpanRecorder,
    TraceContext,
    new_trace,
    prometheus_text,
    stitch_trace,
)
from .service import (
    CONFIDENCE,
    EXPLAIN,
    VERIFY,
    ExEAClient,
    ExplanationService,
    MutationSpec,
    replay_concurrently,
)
from .sharding import ShardedExEAClient, ShardedExplanationService, ShardRouter
from .stats import ServiceStats, WireCounters, imbalance_summary, merge_raw, merge_stats
from .transport import (
    SUPPORTED_WIRES,
    WIRE_AUTO,
    WIRE_BINARY,
    WIRE_JSON,
    LocalShardCluster,
    MuxConnection,
    RemoteShardClient,
    RemoteShardedClient,
    ShardServer,
    default_wire,
    replay_remote_concurrently,
)
from .worker import MicroBatchWorkerPool, WorkerPool

__all__ = [
    "CONFIDENCE",
    "ClusterClient",
    "ClusterManager",
    "ClusterTopology",
    "DeadlineExceededError",
    "Dispatcher",
    "EXPLAIN",
    "ExEAClient",
    "ExplanationService",
    "LocalShardCluster",
    "MicroBatchWorkerPool",
    "MicroBatcher",
    "MutationSpec",
    "MuxConnection",
    "RebalanceConfig",
    "RemoteOperationError",
    "ReplicaBehindError",
    "RemoteShardClient",
    "RemoteShardedClient",
    "RemoteTransportError",
    "ReplicaSpec",
    "ReplicatedLocalCluster",
    "RequestQueue",
    "ResultCache",
    "RoutingTable",
    "ServiceClosedError",
    "ServiceConfig",
    "ServiceError",
    "ServiceOverloadedError",
    "SUPPORTED_WIRES",
    "ServiceRequest",
    "ServiceStats",
    "ShardRouter",
    "ShardServer",
    "ShardedExEAClient",
    "ShardedExplanationService",
    "Span",
    "SpanRecorder",
    "TopologyError",
    "TraceContext",
    "WeightConfig",
    "WeightController",
    "VERIFY",
    "WIRE_AUTO",
    "WIRE_BINARY",
    "WIRE_JSON",
    "WireCounters",
    "WorkerPool",
    "default_wire",
    "imbalance_summary",
    "load_topology",
    "merge_raw",
    "merge_stats",
    "new_trace",
    "parse_topology",
    "prometheus_text",
    "replay_cluster_concurrently",
    "replay_concurrently",
    "replay_remote_concurrently",
    "stitch_trace",
]
