"""The explanation service: dispatcher-batched explain / confidence / verify.

:class:`ExplanationService` turns the PR-1 batch engine into serving
infrastructure.  Callers submit single-pair operations; the central
:class:`~repro.service.dispatch.Dispatcher` packs concurrent requests into
operation-homogeneous cross-worker batches, explain batches run through
:meth:`ExplanationEngine.explain_batch`, confidence/verify batches run
through the batched ADG path
(:meth:`~repro.core.repair.EARepairer.confidence_batch`), repeated traffic
is answered from a versioned LRU cache, and the bounded queue sheds load
when it fills up.  Results are *bit-identical* to direct engine calls:
batching only changes how work is grouped (the engine and the confidence
oracle both guarantee batch == sequential), and the cache is reconciled
with every KG/model version change, so a cached result is always exactly
what a fresh computation would produce.

Online mutation (PR-8)
----------------------

:meth:`ExplanationService.mutate` applies a batch of
:class:`MutationSpec` edits to the live graphs and invalidates only the
mutation's *blast radius*: cached pairs outside the k-hop ball around the
mutated endpoints (relation-seeded for confidence, which additionally
depends on global relation-functionality statistics) survive the
generation change, bit-identical with a cold rebuild.  A mutation falls
back to the pre-PR-8 wholesale drop when the mutation log cannot cover
the span, when the mined reasoning artefacts (relation alignment /
¬sameAs rules — global functions of the graphs) re-mine to different
values, or when ``ServiceConfig.scoped_invalidation`` is off.  Out-of-band
mutations (someone editing a KG without going through ``mutate``) keep
the wholesale contract: the next lookup sees a newer token and drops
everything.

Operations
----------

* ``explain``     — the semantic-matching-subgraph explanation of a pair.
* ``confidence``  — the repair-confidence oracle (explanation -> ADG ->
  confidence, with cr1 filtering per the repair config), memoized both in
  the service cache and in the backend's fingerprint cache.
* ``verify``      — confidence thresholded at the low-confidence bound
  ``beta = sigmoid(theta)`` (the paper's EA-verification operation).
  Served from the confidence cache; such answers are counted as cache
  hits under the ``verify`` per-operation counter.

Threading model
---------------

One dispatcher thread owns the queue and the batching policy; workers are
pure executor threads, each owning a private :class:`~repro.core.ExEA`
backend because the engine's caches are single-threaded state.  Shared
*read* state (the KG memo tables, the model matrices, the reference
alignment) is safe under the GIL.  The reference alignment (model
predictions ∪ seed) is computed once per generation under a lock and
shared by all workers, so every request in a generation is answered
against the same alignment — a prerequisite for determinism under
concurrency.  ``ServiceConfig(scheduler="per-worker")`` restores the PR-2
model (per-worker micro-batchers, pair-at-a-time confidence) as a
benchmark baseline.
"""

from __future__ import annotations

import random
import threading
import time
from concurrent.futures import Future
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Sequence

from ..core import ExEA, ExEAConfig
from ..core.repair.rules import mine_not_same_as_rules, mine_relation_alignment
from ..core.adg import low_confidence_threshold
from ..datasets import shard_workload
from ..kg import AlignmentSet, EADataset, Triple
from ..models import EAModel
from .batching import MicroBatcher, RequestQueue, ServiceRequest
from .cache import GenerationToken, ResultCache
from .config import ServiceConfig
from .dispatch import Dispatcher
from .errors import (
    DeadlineExceededError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
)
from .observability.context import TraceContext, new_span_id, new_trace
from .observability.spans import ServiceTracer, Span, SpanRecorder, stitch_trace
from .observability.tailsample import TailDecision, TailSampler
from .stats import ServiceStats
from .worker import MicroBatchWorkerPool, WorkerPool

#: Operation kinds accepted by :meth:`ExplanationService.submit`.
EXPLAIN = "explain"
CONFIDENCE = "confidence"
VERIFY = "verify"
_KINDS = (EXPLAIN, CONFIDENCE, VERIFY)


def _cache_kind(kind: str) -> str:
    """verify is served from the confidence cache (it is a thresholding of it)."""
    return CONFIDENCE if kind == VERIFY else kind


@dataclass(frozen=True)
class MutationSpec:
    """One online KG edit: add or remove a triple in one of the two graphs.

    The unit the mutation plane ships around — service API, wire codec
    and cluster fan-out all speak lists of these.
    """

    op: str  #: ``"add"`` or ``"remove"``
    kg: int  #: 1 or 2 — which side of the dataset to edit
    triple: Triple

    def __post_init__(self) -> None:
        if self.op not in ("add", "remove"):
            raise ValueError(f"unknown mutation op {self.op!r}; expected 'add' or 'remove'")
        if self.kg not in (1, 2):
            raise ValueError(f"kg must be 1 or 2, got {self.kg!r}")
        if not isinstance(self.triple, Triple):
            raise TypeError("MutationSpec.triple must be a Triple")


class _MutationGate:
    """Reader/writer gate pausing batch execution during graph mutation.

    Workers hold the read side for the duration of a batch — the engine
    walks shared KG indexes that a concurrent mutation would rewrite
    under it — and :meth:`ExplanationService.mutate` holds the write side
    while it edits the graphs and advances the cache.  A writer blocks
    new readers and waits for in-flight ones to drain.  The sharded
    service shares one gate across its shards, since they share the
    graphs.
    """

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._readers = 0
        self._writing = False

    @contextmanager
    def read(self):
        with self._condition:
            while self._writing:
                self._condition.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._condition:
                self._readers -= 1
                if not self._readers:
                    self._condition.notify_all()

    @contextmanager
    def write(self):
        with self._condition:
            while self._writing:
                self._condition.wait()
            self._writing = True
            while self._readers:
                self._condition.wait()
        try:
            yield
        finally:
            with self._condition:
                self._writing = False
                self._condition.notify_all()


class ExplanationService:
    """Dispatcher-batching, caching front-end over the batch explanation engine."""

    def __init__(
        self,
        model: EAModel,
        dataset: EADataset | None = None,
        config: ServiceConfig | None = None,
        exea_config: ExEAConfig | None = None,
        reference_provider: Callable[[], AlignmentSet] | None = None,
        mutation_gate: _MutationGate | None = None,
    ) -> None:
        if not model.is_fitted:
            raise ValueError("the EA model must be fitted before serving explanations")
        self.model = model
        self.dataset = dataset or model.dataset
        if self.dataset is None:
            raise ValueError("a dataset is required (none attached to the model)")
        self.config = config or ServiceConfig()
        self.exea_config = exea_config or ExEAConfig()
        self.stats = ServiceStats(latency_reservoir=self.config.latency_reservoir)
        #: span ring + slow-request log for this service's side of a trace
        self.tracer = ServiceTracer(
            trace_buffer=self.config.trace_buffer,
            slow_request_ms=self.config.slow_request_ms,
            slow_log_capacity=self.config.slow_log_capacity,
        )
        self.cache = ResultCache(self.config.cache_capacity, stats=self.stats)
        self.queue = RequestQueue(self.config.queue_capacity)
        #: one engine backend per worker — engine caches are single-threaded
        self._backends = [
            ExEA(model, self.dataset, self.exea_config)
            for _ in range(self.config.num_workers)
        ]
        self.verify_threshold = low_confidence_threshold(self.exea_config.adg.theta)
        #: per-worker mode = the PR-2 baseline: workers micro-batch the
        #: shared queue themselves and the confidence oracle runs
        #: pair-at-a-time.  Both modes expose `batcher` and `pool`.
        self._per_worker = self.config.scheduler == "per-worker"
        self.batcher = MicroBatcher(
            self.queue,
            max_batch_size=self.config.max_batch_size,
            max_wait_seconds=self.config.max_wait_ms / 1000.0,
        )
        if self._per_worker:
            self.pool = MicroBatchWorkerPool(
                self.config.num_workers, self.batcher, self._handle_batch
            )
            self._scheduler = self.pool
        else:
            self.pool = WorkerPool(self.config.num_workers, self._handle_batch)
            self._scheduler = Dispatcher(
                self.batcher,
                self.pool,
                group_of=_cache_kind,
                precheck=self._precheck,
                on_gather=self.stats.record_batch,
            )
        #: when set, replaces the per-service reference-alignment compute —
        #: the sharded service shares one reference across its shards
        self._reference_provider = reference_provider
        self._reference_lock = threading.Lock()
        self._reference_alignment: AlignmentSet | None = None
        self._reference_version: int | None = None
        #: pauses batch execution while a mutation rewrites the graphs;
        #: the sharded service passes one shared gate to every shard
        self._mutation_gate = mutation_gate or _MutationGate()
        #: while a mutation is in flight, lookups see the pre-mutation
        #: token instead of a half-advanced live one (see ``mutate``)
        self._token_override: GenerationToken | None = None
        #: mined reasoning artefacts (relation alignment + ¬sameAs rules)
        #: memoized per token — the scoped/wholesale decision compares the
        #: pre- and post-mutation values
        self._mined_fingerprint: tuple | None = None
        self._mined_fingerprint_token: GenerationToken | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ExplanationService":
        """Start the dispatcher and worker threads (idempotent)."""
        self._scheduler.start()
        return self

    def close(self, drain: bool = True) -> None:
        """Stop admitting requests; by default wait for queued work to finish."""
        self.queue.close()
        if drain:
            self._scheduler.join()

    def __enter__(self) -> "ExplanationService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Versioning
    # ------------------------------------------------------------------
    def _live_token(self) -> GenerationToken:
        """The token derived directly from the live version counters."""
        return (
            self.dataset.kg1.version,
            self.dataset.kg2.version,
            self.model.embedding_version,
        )

    def _token(self) -> GenerationToken:
        """Generation token tying results to KG/model versions (PR-1 counters).

        While :meth:`mutate` is rewriting the graphs the live counters
        pass through intermediate states no result was ever computed
        under; the override pins concurrent lookups to the pre-mutation
        token until the cache has been advanced to the post-mutation one.
        """
        override = self._token_override
        if override is not None:
            return override
        return self._live_token()

    def generation_token(self) -> GenerationToken:
        """Public view of the generation token guarding this service's cache.

        Transports expose it over the wire so clients can check that every
        shard process serves the same ``(kg1, kg2, model)`` generation.
        """
        return self._token()

    def trace_spans(self, trace_id: str | None = None) -> list[Span]:
        """Spans recorded by this service, optionally filtered to one trace."""
        return self.tracer.recorder.spans(trace_id)

    def slow_requests(self) -> list[dict]:
        """Entries of the slow-request log (empty when no threshold is set)."""
        return self.tracer.slow_entries()

    def reference_alignment(self) -> AlignmentSet:
        """Model predictions ∪ seed alignment, recomputed once per model refit.

        The reference depends only on the model's predictions and the
        seed alignment — not on the graphs — so it survives online KG
        mutations and is keyed on the embedding version alone.
        """
        if self._reference_provider is not None:
            return self._reference_provider()
        version = self.model.embedding_version
        with self._reference_lock:
            if self._reference_alignment is None or self._reference_version != version:
                self._reference_alignment = self._backends[0].generator.reference_alignment()
                self._reference_version = version
            return self._reference_alignment

    # ------------------------------------------------------------------
    # Request admission
    # ------------------------------------------------------------------
    def submit(
        self,
        kind: str,
        source: str,
        target: str,
        deadline_ms: float | None = None,
        trace: TraceContext | None = None,
    ) -> Future:
        """Submit one operation; returns a future resolving to its result.

        When *trace* is given (and sampled) the request's stage spans —
        cache lookup, queue wait, batch gather, engine compute — are
        recorded into this service's span ring under that trace.

        Raises:
            ServiceOverloadedError: the bounded queue is full (backpressure).
            ServiceClosedError: the service no longer admits requests.
            ValueError: unknown operation *kind*.
        """
        if kind not in _KINDS:
            raise ValueError(f"unknown operation {kind!r}; expected one of {_KINDS}")
        self.stats.record_submitted()
        pair = (source, target)
        # Fast path: answer straight from the cache, no queueing at all.
        # verify lookups read the confidence cache but are attributed to
        # their own per-operation hit counter.
        lookup_started = time.perf_counter()
        found, value = self.cache.lookup(_cache_kind(kind), pair, self._token())
        lookup_seconds = time.perf_counter() - lookup_started
        self.stats.record_stage("cache", lookup_seconds)
        if self.tracer.should_record(trace):
            self.tracer.recorder.add(
                "cache",
                trace,
                lookup_seconds,
                attrs={"kind": kind, "hit": found},
                span_id=new_span_id(),
                parent_span_id=trace.span_id,
            )
        if found:
            self.stats.record_hit(kind)
            future: Future = Future()
            future.set_result(self._present(kind, value))
            self.stats.record_completed(0.0)
            self.stats.record_request(kind, lookup_seconds)
            return future
        deadline_ms = deadline_ms if deadline_ms is not None else self.config.default_deadline_ms
        request = ServiceRequest(
            kind=kind,
            pair=pair,
            deadline=None if deadline_ms is None else time.monotonic() + deadline_ms / 1000.0,
            trace=trace,
        )
        try:
            self.queue.put(request)
        except ServiceOverloadedError:
            self.stats.record_rejected()
            raise
        return request.future

    # ------------------------------------------------------------------
    # Batch execution (runs on worker threads)
    # ------------------------------------------------------------------
    def _present(self, kind: str, value):
        """Map a cached/computed raw value to the operation's result type."""
        if kind == VERIFY:
            return bool(value > self.verify_threshold)
        return value

    def _complete(self, request: ServiceRequest, raw_value) -> None:
        if not request.future.set_running_or_notify_cancel():
            return
        now = time.monotonic()
        latency = now - request.enqueued_at
        self.stats.record_completed(latency)
        self.stats.record_request(request.kind, latency)
        # Stages and spans are recorded *before* the future resolves so a
        # caller that sees the result and immediately pulls the trace is
        # guaranteed to find the request's stage spans.
        self._record_request_stages(request, now, latency)
        request.future.set_result(self._present(request.kind, raw_value))

    def _record_request_stages(
        self, request: ServiceRequest, now: float, latency: float
    ) -> None:
        """Record the per-stage breakdown of one completed request.

        The stage boundaries are the request's lifecycle stamps —
        ``enqueued_at`` → ``gathered_at`` (queue wait), → ``started_at``
        (batch gather/packing), → *now* (engine compute) — so the three
        stage durations sum exactly to the request's completion latency.
        Every completion feeds the stage histograms; span objects are
        built only for sampled traces, and the slow-request log captures
        the same breakdown when the latency crosses its threshold.
        """
        gathered = request.gathered_at
        started = request.started_at
        stages: dict[str, float] = {}
        if gathered is not None:
            stages["queue"] = max(gathered - request.enqueued_at, 0.0)
            batch_end = started if started is not None else now
            stages["batch"] = max(batch_end - gathered, 0.0)
            if started is not None:
                stages["engine"] = max(now - started, 0.0)
        for stage, seconds in stages.items():
            self.stats.record_stage(stage, seconds)
        trace = request.trace
        if stages and self.tracer.should_record(trace):
            # Walk the stages backwards from "now" so the spans tile the
            # request's wall-clock interval end to end.
            cursor = time.time()
            for name in ("engine", "batch", "queue"):
                seconds = stages.get(name)
                if seconds is None:
                    continue
                self.tracer.recorder.add(
                    name,
                    trace,
                    seconds,
                    attrs={"kind": request.kind},
                    span_id=new_span_id(),
                    parent_span_id=trace.span_id,
                    end_wall=cursor,
                )
                cursor -= seconds
        slow = self.tracer.slow_log
        if slow is not None and latency * 1000.0 >= slow.threshold_ms:
            self.stats.record_slow_request()
            slow.record(
                request.kind,
                request.pair,
                latency * 1000.0,
                {name: seconds * 1000.0 for name, seconds in stages.items()},
                trace_id=trace.trace_id if trace is not None else None,
            )

    def _fail(self, request: ServiceRequest, error: BaseException) -> None:
        if not request.future.set_running_or_notify_cancel():
            return
        request.future.set_exception(error)
        if isinstance(error, DeadlineExceededError):
            self.stats.record_expired()
        else:
            self.stats.record_failed()

    def _try_resolve(self, request: ServiceRequest, token: GenerationToken) -> bool:
        """Resolve a request without engine work, if possible.

        Fails it when its deadline lapsed in the queue, completes it when
        an earlier batch (or another worker) cached its pair while it
        waited.  Returns True when the request is done.
        """
        now = time.monotonic()
        if request.deadline is not None and now > request.deadline:
            self._fail(
                request,
                DeadlineExceededError(
                    f"{request.kind}{request.pair} expired after "
                    f"{(now - request.enqueued_at) * 1000:.1f}ms in queue"
                ),
            )
            return True
        found, value = self.cache.lookup(_cache_kind(request.kind), request.pair, token)
        if found:
            self.stats.record_hit(request.kind)
            self._complete(request, value)
            return True
        return False

    def _precheck(self, request: ServiceRequest) -> bool:
        """Dispatcher-side resolve-before-routing (cache hits, lapsed deadlines)."""
        return self._try_resolve(request, self._token())

    def _handle_batch(self, worker_id: int, batch: list[ServiceRequest]) -> None:
        # Workers hold the mutation gate's read side for the whole batch:
        # the engine walks shared KG indexes that a concurrent mutation
        # would rewrite under it.
        with self._mutation_gate.read():
            self._execute_batch(worker_id, batch)

    def _execute_batch(self, worker_id: int, batch: list[ServiceRequest]) -> None:
        backend = self._backends[worker_id]
        token = self._token()
        reference = self.reference_alignment()
        execution_started = time.monotonic()
        for request in batch:
            request.started_at = execution_started
        if self._per_worker:
            # Dispatcher mode already counted this cycle via on_gather;
            # both modes therefore record the raw gathered size, keeping
            # the occupancy metric comparable across schedulers.
            self.stats.record_batch(len(batch))

        live = [request for request in batch if not self._try_resolve(request, token)]

        explain_requests = [r for r in live if r.kind == EXPLAIN]
        if explain_requests:
            self._run_explains(backend, explain_requests, reference, token)

        confidence_requests = [r for r in live if r.kind in (CONFIDENCE, VERIFY)]
        if confidence_requests:
            self._run_confidences(backend, confidence_requests, reference, token)

    def _run_explains(self, backend: ExEA, requests, reference, token) -> None:
        """One coalesced ``explain_batch`` call for every live explain request."""
        pairs = list(dict.fromkeys(request.pair for request in requests))
        try:
            results = backend.generator.engine.explain_batch(pairs, reference)
        except Exception:
            # Isolate the poisonous pair: retry one by one so a single bad
            # request (e.g. an entity unknown to the model) fails alone.
            results = None
        if results is None:
            for request in requests:
                try:
                    value = backend.generator.engine.explain_batch([request.pair], reference)[
                        request.pair
                    ]
                except Exception as error:  # noqa: BLE001 - per-request isolation
                    self._fail(request, error)
                    continue
                self.cache.put(EXPLAIN, request.pair, token, value)
                self.stats.record_miss(EXPLAIN)
                self._complete(request, value)
            return
        for request in requests:
            value = results[request.pair]
            self.cache.put(EXPLAIN, request.pair, token, value)
            self.stats.record_miss(EXPLAIN)
            self._complete(request, value)

    def _run_confidences(self, backend: ExEA, requests, reference, token) -> None:
        """Batched repair-confidence oracle over the live confidence/verify requests.

        One :meth:`~repro.core.repair.EARepairer.confidence_batch` call
        gathers matched-neighbour sets, explains every cache-missing pair
        through the engine's shared path-embedding store and constructs
        the ADGs in one pass — bit-identical to pair-at-a-time oracle
        calls (which remain the fallback when a batch contains a
        poisonous pair, and the only path in ``per-worker`` mode).
        """
        computed: dict[tuple[str, str], float] | None = None
        if not self._per_worker:
            pairs = list(dict.fromkeys(request.pair for request in requests))
            try:
                computed = backend.repairer.confidence_batch(pairs, reference)
            except Exception:
                # Isolate the poisonous pair: fall back to one-by-one so a
                # single bad request (e.g. an entity unknown to the model)
                # fails alone.
                computed = None
        if computed is not None:
            for pair, value in computed.items():
                self.cache.put(CONFIDENCE, pair, token, value)
            for request in requests:
                self.stats.record_miss(request.kind)
                self._complete(request, computed[request.pair])
            return
        done: dict[tuple[str, str], float] = {}
        for request in requests:
            pair = request.pair
            if pair not in done:
                try:
                    done[pair] = backend.repairer.confidence(pair[0], pair[1], reference)
                except Exception as error:  # noqa: BLE001 - per-request isolation
                    self._fail(request, error)
                    continue
                self.cache.put(CONFIDENCE, pair, token, done[pair])
            self.stats.record_miss(request.kind)
            self._complete(request, done[pair])

    # ------------------------------------------------------------------
    # Online mutation (PR-8)
    # ------------------------------------------------------------------
    def mutate(self, mutations: Sequence[MutationSpec]) -> dict:
        """Apply KG edits and invalidate only their blast radius.

        Pauses batch execution (the mutation gate's write side), applies
        every spec to the live graphs, computes per-kind entity scopes
        from the mutation records, and advances the result cache to the
        post-mutation generation evicting only intersecting entries.
        Engine-internal caches reconcile themselves on their next batch
        via the same mutation log (:meth:`KnowledgeGraph.mutations_since`).

        Returns a JSON-safe report::

            {"applied": int, "token": [kg1, kg2, model],
             "scoped": bool, "entries_dropped": int,
             "entries_retained": int, "blast_entities": int}
        """
        specs = list(mutations)
        for spec in specs:
            if not isinstance(spec, MutationSpec):
                raise TypeError(f"expected MutationSpec, got {type(spec).__name__}")
        with self._mutation_gate.write():
            return self._mutate_locked(specs)

    def _mutate_locked(self, specs: list[MutationSpec]) -> dict:
        """Apply *specs* and reconcile the cache (caller holds the write gate)."""
        old_token = self._token()
        fingerprint_before = self._mined_fingerprint_under(old_token)
        self._token_override = old_token
        try:
            records1, records2 = self._apply_specs(specs)
            new_token = self._live_token()
            scopes, blast = self._compute_scopes(
                records1, records2, fingerprint_before, new_token
            )
            report = self._advance_cache(new_token, scopes, blast)
        finally:
            # Cleared only after the cache reached the new token: a lookup
            # racing this window sees either the pinned old token (its
            # entries are still the pre-mutation ones) or the new one.
            self._token_override = None
        report["applied"] = len(specs)
        report["token"] = list(new_token)
        # Internal (not JSON-safe): the per-kind entity scopes, so hosts
        # holding derived caches (the shard server's encode cache) can
        # scope their own eviction.  Wire layers pop it before encoding.
        report["_scopes"] = scopes
        return report

    def _apply_specs(self, specs: list[MutationSpec]):
        """Apply *specs* to the graphs; returns both sides' mutation records.

        Either side's records are ``None`` when its log cannot cover the
        span (an oversized batch) — the caller falls back to wholesale.
        """
        kg1, kg2 = self.dataset.kg1, self.dataset.kg2
        before1, before2 = kg1.version, kg2.version
        for spec in specs:
            kg = kg1 if spec.kg == 1 else kg2
            if spec.op == "add":
                kg.add_triple(spec.triple)
            else:
                kg.remove_triple(spec.triple)
        return kg1.mutations_since(before1), kg2.mutations_since(before2)

    def _mined_fingerprint_under(self, token: GenerationToken):
        """Mined reasoning artefacts under *token*, memoized per token.

        ``None`` when cr1 is disabled — the conflict resolver is never
        consulted, so no cached confidence depends on the artefacts and
        the equality check degenerates to "unchanged".  With cr1 on this
        re-mines (O(triples)) once per generation; the cost is what buys
        scoped confidence eviction its correctness, because the artefacts
        are global functions of the graphs.
        """
        if not self.exea_config.repair.enable_relation_conflicts:
            return None
        if self._mined_fingerprint_token != token:
            self._mined_fingerprint = (
                mine_relation_alignment(self.model, self.dataset.kg1, self.dataset.kg2),
                mine_not_same_as_rules(self.dataset.kg1),
                mine_not_same_as_rules(self.dataset.kg2),
            )
            self._mined_fingerprint_token = token
        return self._mined_fingerprint

    def _compute_scopes(self, records1, records2, fingerprint_before, new_token):
        """Per-kind entity scopes for the cache advance.

        Returns ``(scopes, blast_entities)``; ``scopes is None`` means
        wholesale (log gap, mined-artefact drift, or scoped invalidation
        disabled).  Explain entries depend only on the structural k-hop
        ball around the mutated endpoints; confidence entries additionally
        depend on relation functionality statistics, so their ball is
        relation-seeded (every endpoint of every triple carrying a mutated
        relation).  verify shares the confidence cache, hence its scope.
        """
        if not self.config.scoped_invalidation:
            return None, 0
        if records1 is None or records2 is None:
            return None, 0
        if fingerprint_before != self._mined_fingerprint_under(new_token):
            return None, 0
        hops = self.exea_config.explanation.max_hops
        kg1, kg2 = self.dataset.kg1, self.dataset.kg2
        explain_scope = (
            kg1.blast_radius(records1, hops),
            kg2.blast_radius(records2, hops),
        )
        confidence_scope = (
            kg1.blast_radius(records1, hops, include_relations=True),
            kg2.blast_radius(records2, hops, include_relations=True),
        )
        scopes = {EXPLAIN: explain_scope, CONFIDENCE: confidence_scope}
        return scopes, len(confidence_scope[0]) + len(confidence_scope[1])

    def _advance_cache(self, new_token: GenerationToken, scopes, blast: int) -> dict:
        """Advance the result cache to *new_token* and record telemetry."""
        if scopes is None:
            dropped, retained = self.cache.invalidate_scoped(
                new_token, {EXPLAIN: None, CONFIDENCE: None}
            )
            self.stats.record_invalidation()
        else:
            dropped, retained = self.cache.invalidate_scoped(new_token, scopes)
            self.stats.record_scoped_invalidation(dropped, retained, blast)
        return {
            "scoped": scopes is not None,
            "entries_dropped": dropped,
            "entries_retained": retained,
            "blast_entities": blast,
        }


class ExEAClient:
    """Synchronous in-process facade over an :class:`ExplanationService`.

    Callers that think in terms of single requests use this; concurrent
    clients each hold one (it is stateless) and the service's micro-batcher
    does the coalescing underneath.
    """

    def __init__(
        self,
        service: ExplanationService,
        trace_sample_rate: float | None = None,
        sample_seed: int | None = None,
        tail_sampler: TailSampler | None = None,
    ) -> None:
        self.service = service
        #: head-based sampling rate of ``traced()``; defaults to the
        #: service config's ``trace_sample_rate``
        if trace_sample_rate is None:
            trace_sample_rate = service.config.trace_sample_rate
        if not 0.0 <= trace_sample_rate <= 1.0:
            raise ValueError("trace_sample_rate must be within [0, 1]")
        self._trace_sample_rate = trace_sample_rate
        self._sample_random = random.Random(sample_seed)
        #: tail-based sampling: when set, it replaces the head-based
        #: rate — ``traced()`` traces the sampler's fraction of requests
        #: as *pending* and keeps/drops at completion (slow, errored,
        #: retried, or baseline).  Never affects results.
        self.tail_sampler = tail_sampler
        #: client-side span ring: one ``client_send`` span per traced call
        self.tracer = SpanRecorder(512)

    def _sample(self) -> bool:
        """Head-based sampling decision for one root trace."""
        rate = self._trace_sample_rate
        if rate >= 1.0:
            return True
        if rate <= 0.0:
            return False
        return self._sample_random.random() < rate

    # ------------------------------------------------------------------
    def traced(
        self, kind: str, source: str, target: str, timeout: float | None = None
    ) -> tuple[object, TraceContext]:
        """Run one traced operation; returns ``(result, trace_context)``.

        Mints a root :class:`TraceContext` — sampled per the head-based
        ``trace_sample_rate`` decided here, at the root, so every layer
        downstream agrees — submits the request under it (the service
        records its stage spans into its own ring when sampled), and
        records the enveloping ``client_send`` span — submit to result —
        into this client's ring.  Feed the context's ``trace_id`` to
        :meth:`trace_timeline` for the stitched per-request view.

        With a :class:`TailSampler` attached, the sampled fraction is the
        sampler's and the keep/drop decision moves to completion: slow,
        errored or retried requests are kept (and their spans pinned in
        every ring), fast clean ones are dropped on the spot bar the
        configured baseline fraction.
        """
        sampler = self.tail_sampler
        sampled = sampler.begin() if sampler is not None else self._sample()
        trace = new_trace(sampled=sampled)
        started = time.perf_counter()
        try:
            value = self.service.submit(kind, source, target, trace=trace).result(timeout)
        except BaseException:
            if trace.sampled:
                self.tracer.add(
                    "client_send",
                    trace,
                    time.perf_counter() - started,
                    attrs={"kind": kind, "source": source, "target": target, "error": True},
                )
                if sampler is not None:
                    self._tail_complete(
                        sampler, trace, (time.perf_counter() - started) * 1000.0, errored=True
                    )
            raise
        elapsed = time.perf_counter() - started
        if trace.sampled:
            self.tracer.add(
                "client_send",
                trace,
                elapsed,
                attrs={"kind": kind, "source": source, "target": target},
            )
            if sampler is not None:
                self._tail_complete(sampler, trace, elapsed * 1000.0, errored=False)
        return value, trace

    def _tail_complete(
        self,
        sampler: TailSampler,
        trace: TraceContext,
        latency_ms: float,
        errored: bool,
    ) -> TailDecision:
        """Apply the tail keep/drop decision for one completed pending trace.

        In-process requests never fail over, so ``retried`` is always
        False here (the remote facades track failovers explicitly).
        Dropped traces are NOT purged eagerly — the span ring is the
        pending buffer and eviction recycles them for free; an O(ring)
        rebuild per fast request would dwarf the request itself.
        """
        decision = sampler.complete(
            trace.trace_id, latency_ms, errored=errored, retried=False
        )
        if decision.keep:
            self._pin_trace(trace.trace_id)
        return decision

    def _pin_trace(self, trace_id: str) -> None:
        """Pin a kept trace's spans against ring eviction, everywhere we can."""
        self.tracer.pin(trace_id)
        self.service.tracer.recorder.pin(trace_id)

    def trace_timeline(self, trace_id: str) -> dict:
        """Stitched timeline of one trace: client spans + the service's spans."""
        spans = self.tracer.spans(trace_id) + self.service.trace_spans(trace_id)
        return stitch_trace(spans, trace_id)

    # ------------------------------------------------------------------
    def explain(self, source: str, target: str, timeout: float | None = None, deadline_ms: float | None = None):
        """Explanation (semantic matching subgraph) of one pair, synchronously."""
        return self.service.submit(EXPLAIN, source, target, deadline_ms).result(timeout)

    def confidence(self, source: str, target: str, timeout: float | None = None, deadline_ms: float | None = None) -> float:
        """Repair-confidence of one pair, synchronously."""
        return self.service.submit(CONFIDENCE, source, target, deadline_ms).result(timeout)

    def verify(self, source: str, target: str, timeout: float | None = None, deadline_ms: float | None = None) -> bool:
        """EA verification (confidence thresholded at beta) of one pair."""
        return self.service.submit(VERIFY, source, target, deadline_ms).result(timeout)

    # ------------------------------------------------------------------
    def explain_many(
        self, pairs: list[tuple[str, str]], timeout: float | None = None
    ) -> dict[tuple[str, str], object]:
        """Submit every pair first, then gather — this drives the batcher."""
        futures = {pair: self.service.submit(EXPLAIN, *pair) for pair in dict.fromkeys(pairs)}
        return {pair: future.result(timeout) for pair, future in futures.items()}

    def replay(
        self, workload: list[tuple[str, str, str]], timeout: float | None = None
    ) -> list[object]:
        """Run a scripted ``(kind, source, target)`` traffic replay in order.

        Requests are submitted as fast as admission control allows and
        gathered afterwards; overloaded submissions are retried after a
        short backoff so the replay exerts sustained pressure without
        dropping requests.
        """
        futures: list[Future] = []
        for kind, source, target in workload:
            while True:
                try:
                    futures.append(self.service.submit(kind, source, target))
                    break
                except ServiceOverloadedError:
                    time.sleep(0.0005)
        return [future.result(timeout) for future in futures]


def _fan_out(thunks) -> None:
    """Run every thunk on its own daemon thread; join all; re-raise the first failure.

    The shared fan-out used by the concurrent replay drivers (local and
    remote) and the remote client's per-shard scatter — one place to fix
    error propagation for all of them.  A failed thunk must never be
    silently dropped: a replay that lost requests would otherwise be
    mistaken for a fast one.
    """
    errors: list[BaseException] = []

    def run(thunk) -> None:
        try:
            thunk()
        except BaseException as error:  # noqa: BLE001 - re-raised below
            errors.append(error)

    threads = [threading.Thread(target=run, args=(thunk,), daemon=True) for thunk in thunks]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


def replay_concurrently(
    service: ExplanationService,
    workload: list[tuple[str, str, str]],
    num_clients: int,
    timeout: float | None = 120.0,
) -> float:
    """Drive a scripted replay through *num_clients* concurrent clients.

    Shards the workload round-robin, runs one :class:`ExEAClient` per
    shard on its own thread, and returns the elapsed wall-clock seconds.
    Client failures are re-raised — a replay that dropped requests must
    never be mistaken for a fast one (its timing would be meaningless).
    """
    shards = [shard for shard in shard_workload(workload, num_clients) if shard]
    start = time.perf_counter()
    _fan_out(
        [
            lambda shard=shard: ExEAClient(service).replay(shard, timeout=timeout)
            for shard in shards
        ]
    )
    return time.perf_counter() - start


__all__ = [
    "CONFIDENCE",
    "EXPLAIN",
    "VERIFY",
    "ExEAClient",
    "ExplanationService",
    "MutationSpec",
    "ServiceError",
    "ServiceClosedError",
    "ServiceOverloadedError",
    "DeadlineExceededError",
    "replay_concurrently",
]
