"""The explanation service: micro-batched explain / confidence / verify.

:class:`ExplanationService` turns the PR-1 batch engine into serving
infrastructure.  Callers submit single-pair operations; the service
coalesces concurrent requests into :meth:`ExplanationEngine.explain_batch`
calls, answers repeated traffic from a versioned LRU cache, and sheds load
when the bounded queue fills up.  Results are *bit-identical* to direct
engine calls: batching only changes how work is grouped (the engine
guarantees batch == sequential), and the cache is invalidated wholesale
whenever either KG or the model changes version, so a cached result is
always exactly what a fresh computation would produce.

Operations
----------

* ``explain``     — the semantic-matching-subgraph explanation of a pair.
* ``confidence``  — the repair-confidence oracle (explanation -> ADG ->
  confidence, with cr1 filtering per the repair config), memoized both in
  the service cache and in the backend's fingerprint cache.
* ``verify``      — confidence thresholded at the low-confidence bound
  ``beta = sigmoid(theta)`` (the paper's EA-verification operation).

Threading model
---------------

Workers are threads; each owns a private :class:`~repro.core.ExEA`
backend because the engine's caches are single-threaded state.  Shared
*read* state (the KG memo tables, the model matrices, the reference
alignment) is safe under the GIL.  The reference alignment (model
predictions ∪ seed) is computed once per generation under a lock and
shared by all workers, so every request in a generation is answered
against the same alignment — a prerequisite for determinism under
concurrency.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future

from ..core import ExEA, ExEAConfig
from ..core.adg import low_confidence_threshold
from ..datasets import shard_workload
from ..kg import AlignmentSet, EADataset
from ..models import EAModel
from .batching import MicroBatcher, RequestQueue, ServiceRequest
from .cache import GenerationToken, ResultCache
from .config import ServiceConfig
from .errors import (
    DeadlineExceededError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
)
from .stats import ServiceStats
from .worker import WorkerPool

#: Operation kinds accepted by :meth:`ExplanationService.submit`.
EXPLAIN = "explain"
CONFIDENCE = "confidence"
VERIFY = "verify"
_KINDS = (EXPLAIN, CONFIDENCE, VERIFY)


def _cache_kind(kind: str) -> str:
    """verify is served from the confidence cache (it is a thresholding of it)."""
    return CONFIDENCE if kind == VERIFY else kind


class ExplanationService:
    """Micro-batching, caching front-end over the batch explanation engine."""

    def __init__(
        self,
        model: EAModel,
        dataset: EADataset | None = None,
        config: ServiceConfig | None = None,
        exea_config: ExEAConfig | None = None,
    ) -> None:
        if not model.is_fitted:
            raise ValueError("the EA model must be fitted before serving explanations")
        self.model = model
        self.dataset = dataset or model.dataset
        if self.dataset is None:
            raise ValueError("a dataset is required (none attached to the model)")
        self.config = config or ServiceConfig()
        self.exea_config = exea_config or ExEAConfig()
        self.stats = ServiceStats(latency_reservoir=self.config.latency_reservoir)
        self.cache = ResultCache(self.config.cache_capacity, stats=self.stats)
        self.queue = RequestQueue(self.config.queue_capacity)
        self.batcher = MicroBatcher(
            self.queue,
            max_batch_size=self.config.max_batch_size,
            max_wait_seconds=self.config.max_wait_ms / 1000.0,
        )
        #: one engine backend per worker — engine caches are single-threaded
        self._backends = [
            ExEA(model, self.dataset, self.exea_config)
            for _ in range(self.config.num_workers)
        ]
        self.verify_threshold = low_confidence_threshold(self.exea_config.adg.theta)
        self.pool = WorkerPool(self.config.num_workers, self.batcher, self._handle_batch)
        self._reference_lock = threading.Lock()
        self._reference_alignment: AlignmentSet | None = None
        self._reference_token: GenerationToken | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ExplanationService":
        """Start the worker threads (idempotent)."""
        self.pool.start()
        return self

    def close(self, drain: bool = True) -> None:
        """Stop admitting requests; by default wait for queued work to finish."""
        self.queue.close()
        if drain:
            self.pool.join()

    def __enter__(self) -> "ExplanationService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Versioning
    # ------------------------------------------------------------------
    def _token(self) -> GenerationToken:
        """Generation token tying results to KG/model versions (PR-1 counters)."""
        return (
            self.dataset.kg1.version,
            self.dataset.kg2.version,
            self.model.embedding_version,
        )

    def reference_alignment(self) -> AlignmentSet:
        """Model predictions ∪ seed alignment, recomputed once per generation."""
        token = self._token()
        with self._reference_lock:
            if self._reference_alignment is None or self._reference_token != token:
                self._reference_alignment = self._backends[0].generator.reference_alignment()
                self._reference_token = token
            return self._reference_alignment

    # ------------------------------------------------------------------
    # Request admission
    # ------------------------------------------------------------------
    def submit(
        self,
        kind: str,
        source: str,
        target: str,
        deadline_ms: float | None = None,
    ) -> Future:
        """Submit one operation; returns a future resolving to its result.

        Raises:
            ServiceOverloadedError: the bounded queue is full (backpressure).
            ServiceClosedError: the service no longer admits requests.
            ValueError: unknown operation *kind*.
        """
        if kind not in _KINDS:
            raise ValueError(f"unknown operation {kind!r}; expected one of {_KINDS}")
        self.stats.record_submitted()
        pair = (source, target)
        # Fast path: answer straight from the cache, no queueing at all.
        found, value = self.cache.lookup(_cache_kind(kind), pair, self._token())
        if found:
            self.stats.record_hit()
            future: Future = Future()
            future.set_result(self._present(kind, value))
            self.stats.record_completed(0.0)
            return future
        deadline_ms = deadline_ms if deadline_ms is not None else self.config.default_deadline_ms
        request = ServiceRequest(
            kind=kind,
            pair=pair,
            deadline=None if deadline_ms is None else time.monotonic() + deadline_ms / 1000.0,
        )
        try:
            self.queue.put(request)
        except ServiceOverloadedError:
            self.stats.record_rejected()
            raise
        return request.future

    # ------------------------------------------------------------------
    # Batch execution (runs on worker threads)
    # ------------------------------------------------------------------
    def _present(self, kind: str, value):
        """Map a cached/computed raw value to the operation's result type."""
        if kind == VERIFY:
            return bool(value > self.verify_threshold)
        return value

    def _complete(self, request: ServiceRequest, raw_value) -> None:
        if not request.future.set_running_or_notify_cancel():
            return
        request.future.set_result(self._present(request.kind, raw_value))
        self.stats.record_completed(time.monotonic() - request.enqueued_at)

    def _fail(self, request: ServiceRequest, error: BaseException) -> None:
        if not request.future.set_running_or_notify_cancel():
            return
        request.future.set_exception(error)
        if isinstance(error, DeadlineExceededError):
            self.stats.record_expired()
        else:
            self.stats.record_failed()

    def _handle_batch(self, worker_id: int, batch: list[ServiceRequest]) -> None:
        backend = self._backends[worker_id]
        token = self._token()
        reference = self.reference_alignment()
        self.stats.record_batch(len(batch))

        now = time.monotonic()
        live: list[ServiceRequest] = []
        for request in batch:
            if request.deadline is not None and now > request.deadline:
                self._fail(
                    request,
                    DeadlineExceededError(
                        f"{request.kind}{request.pair} expired after "
                        f"{(now - request.enqueued_at) * 1000:.1f}ms in queue"
                    ),
                )
                continue
            # Re-check the cache: an earlier batch (or another worker) may
            # have computed this pair while the request sat in the queue.
            found, value = self.cache.lookup(_cache_kind(request.kind), request.pair, token)
            if found:
                self.stats.record_hit()
                self._complete(request, value)
                continue
            live.append(request)

        explain_requests = [r for r in live if r.kind == EXPLAIN]
        if explain_requests:
            self._run_explains(backend, explain_requests, reference, token)

        confidence_requests = [r for r in live if r.kind in (CONFIDENCE, VERIFY)]
        if confidence_requests:
            self._run_confidences(backend, confidence_requests, reference, token)

    def _run_explains(self, backend: ExEA, requests, reference, token) -> None:
        """One coalesced ``explain_batch`` call for every live explain request."""
        pairs = list(dict.fromkeys(request.pair for request in requests))
        try:
            results = backend.generator.engine.explain_batch(pairs, reference)
        except Exception:
            # Isolate the poisonous pair: retry one by one so a single bad
            # request (e.g. an entity unknown to the model) fails alone.
            results = None
        if results is None:
            for request in requests:
                try:
                    value = backend.generator.engine.explain_batch([request.pair], reference)[
                        request.pair
                    ]
                except Exception as error:  # noqa: BLE001 - per-request isolation
                    self._fail(request, error)
                    continue
                self.cache.put(EXPLAIN, request.pair, token, value)
                self.stats.record_miss()
                self._complete(request, value)
            return
        for request in requests:
            value = results[request.pair]
            self.cache.put(EXPLAIN, request.pair, token, value)
            self.stats.record_miss()
            self._complete(request, value)

    def _run_confidences(self, backend: ExEA, requests, reference, token) -> None:
        """Repair-confidence oracle per unique pair (fingerprint-memoized inside)."""
        computed: dict[tuple[str, str], float] = {}
        for request in requests:
            pair = request.pair
            if pair not in computed:
                try:
                    computed[pair] = backend.repairer.confidence(pair[0], pair[1], reference)
                except Exception as error:  # noqa: BLE001 - per-request isolation
                    self._fail(request, error)
                    continue
                self.cache.put(CONFIDENCE, pair, token, computed[pair])
            self.stats.record_miss()
            self._complete(request, computed[pair])


class ExEAClient:
    """Synchronous in-process facade over an :class:`ExplanationService`.

    Callers that think in terms of single requests use this; concurrent
    clients each hold one (it is stateless) and the service's micro-batcher
    does the coalescing underneath.
    """

    def __init__(self, service: ExplanationService) -> None:
        self.service = service

    # ------------------------------------------------------------------
    def explain(self, source: str, target: str, timeout: float | None = None, deadline_ms: float | None = None):
        return self.service.submit(EXPLAIN, source, target, deadline_ms).result(timeout)

    def confidence(self, source: str, target: str, timeout: float | None = None, deadline_ms: float | None = None) -> float:
        return self.service.submit(CONFIDENCE, source, target, deadline_ms).result(timeout)

    def verify(self, source: str, target: str, timeout: float | None = None, deadline_ms: float | None = None) -> bool:
        return self.service.submit(VERIFY, source, target, deadline_ms).result(timeout)

    # ------------------------------------------------------------------
    def explain_many(
        self, pairs: list[tuple[str, str]], timeout: float | None = None
    ) -> dict[tuple[str, str], object]:
        """Submit every pair first, then gather — this drives the batcher."""
        futures = {pair: self.service.submit(EXPLAIN, *pair) for pair in dict.fromkeys(pairs)}
        return {pair: future.result(timeout) for pair, future in futures.items()}

    def replay(
        self, workload: list[tuple[str, str, str]], timeout: float | None = None
    ) -> list[object]:
        """Run a scripted ``(kind, source, target)`` traffic replay in order.

        Requests are submitted as fast as admission control allows and
        gathered afterwards; overloaded submissions are retried after a
        short backoff so the replay exerts sustained pressure without
        dropping requests.
        """
        futures: list[Future] = []
        for kind, source, target in workload:
            while True:
                try:
                    futures.append(self.service.submit(kind, source, target))
                    break
                except ServiceOverloadedError:
                    time.sleep(0.0005)
        return [future.result(timeout) for future in futures]


def replay_concurrently(
    service: ExplanationService,
    workload: list[tuple[str, str, str]],
    num_clients: int,
    timeout: float | None = 120.0,
) -> float:
    """Drive a scripted replay through *num_clients* concurrent clients.

    Shards the workload round-robin, runs one :class:`ExEAClient` per
    shard on its own thread, and returns the elapsed wall-clock seconds.
    Client failures are collected and re-raised — a replay that dropped
    requests must never be mistaken for a fast one (its timing would be
    meaningless).
    """
    shards = [shard for shard in shard_workload(workload, num_clients) if shard]
    errors: list[BaseException] = []

    def run_shard(shard: list[tuple[str, str, str]]) -> None:
        try:
            ExEAClient(service).replay(shard, timeout=timeout)
        except BaseException as error:  # noqa: BLE001 - re-raised below
            errors.append(error)

    threads = [
        threading.Thread(target=run_shard, args=(shard,), daemon=True) for shard in shards
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    return elapsed


__all__ = [
    "CONFIDENCE",
    "EXPLAIN",
    "VERIFY",
    "ExEAClient",
    "ExplanationService",
    "ServiceError",
    "ServiceClosedError",
    "ServiceOverloadedError",
    "DeadlineExceededError",
    "replay_concurrently",
]
