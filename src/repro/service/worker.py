"""Thread-based worker pool driving the micro-batcher.

Each worker owns one engine backend (index ``worker_id`` into the
service's backend list) because the engine's caches are deliberately
single-threaded; sharing read-only state (KG memo tables, the model's
matrices) across workers is safe, mutating engine state is not.
"""

from __future__ import annotations

import threading
from typing import Callable

from .batching import MicroBatcher, ServiceRequest

BatchHandler = Callable[[int, list[ServiceRequest]], None]


class WorkerPool:
    """Fixed pool of daemon threads, each looping batcher -> handler."""

    def __init__(self, num_workers: int, batcher: MicroBatcher, handler: BatchHandler) -> None:
        self.num_workers = num_workers
        self.batcher = batcher
        self.handler = handler
        self._threads: list[threading.Thread] = []

    def start(self) -> None:
        if self._threads:
            return
        for worker_id in range(self.num_workers):
            thread = threading.Thread(
                target=self._run,
                args=(worker_id,),
                name=f"repro-service-worker-{worker_id}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _run(self, worker_id: int) -> None:
        while True:
            batch = self.batcher.next_batch()
            if not batch:
                return
            try:
                self.handler(worker_id, batch)
            except BaseException as error:  # noqa: BLE001 - must not kill the worker
                # The handler resolves futures itself; anything escaping it
                # is a bug or a systemic failure — fail the whole batch so
                # no client blocks forever, then keep serving.
                for request in batch:
                    if not request.future.done():
                        request.future.set_exception(error)

    def join(self, timeout: float | None = None) -> None:
        """Wait for every worker to exit (the queue must be closed first)."""
        for thread in self._threads:
            thread.join(timeout)

    @property
    def alive(self) -> bool:
        return any(thread.is_alive() for thread in self._threads)
