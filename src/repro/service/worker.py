"""Thread-based worker pools executing request batches.

Since the dispatcher refactor there are two pool flavours:

* :class:`WorkerPool` — pure executors.  Each worker owns a private inbox
  and blocks on it; the central :class:`~repro.service.dispatch.Dispatcher`
  acquires an idle worker and assigns it a packed batch.  Workers never
  touch the request queue and never make batching decisions.
* :class:`MicroBatchWorkerPool` — the PR-2 scheduling model, kept as the
  benchmark baseline (``ServiceConfig(scheduler="per-worker")``): every
  worker runs its own :class:`~repro.service.batching.MicroBatcher` loop
  over the shared queue, so batches never cross workers.

Either way each worker id indexes one private engine backend in the
owning service (the engine's caches are deliberately single-threaded);
sharing read-only state (KG memo tables, the model's matrices) across
workers is safe, mutating engine state is not.
"""

from __future__ import annotations

import queue
import threading
from typing import Callable

from .batching import MicroBatcher, ServiceRequest

BatchHandler = Callable[[int, list[ServiceRequest]], None]


def _fail_batch(batch: list[ServiceRequest], error: BaseException) -> None:
    """Resolve every unresolved future of *batch* with *error*.

    The handler resolves futures itself; anything escaping it is a bug or
    a systemic failure — fail the whole batch so no client blocks forever,
    then keep serving.
    """
    for request in batch:
        if not request.future.done():
            request.future.set_exception(error)


class WorkerPool:
    """Fixed pool of daemon executor threads fed through per-worker inboxes."""

    def __init__(self, num_workers: int, handler: BatchHandler) -> None:
        self.num_workers = num_workers
        self.handler = handler
        self._inboxes: list[queue.SimpleQueue] = [queue.SimpleQueue() for _ in range(num_workers)]
        self._idle: queue.SimpleQueue = queue.SimpleQueue()
        self._threads: list[threading.Thread] = []

    def start(self) -> None:
        """Start every worker thread and mark it idle (idempotent)."""
        if self._threads:
            return
        for worker_id in range(self.num_workers):
            thread = threading.Thread(
                target=self._run,
                args=(worker_id,),
                name=f"repro-service-worker-{worker_id}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
            self._idle.put(worker_id)

    # ------------------------------------------------------------------
    # Dispatcher interface
    # ------------------------------------------------------------------
    def acquire_worker(self) -> int:
        """Block until a worker is idle and claim it (returns its id)."""
        return self._idle.get()

    def assign(self, worker_id: int, batch: list[ServiceRequest]) -> None:
        """Hand a packed batch to a previously acquired worker."""
        self._inboxes[worker_id].put(batch)

    def shutdown(self) -> None:
        """Ask every worker to exit once its queued batches are done."""
        for inbox in self._inboxes:
            inbox.put(None)

    # ------------------------------------------------------------------
    def _run(self, worker_id: int) -> None:
        inbox = self._inboxes[worker_id]
        while True:
            batch = inbox.get()
            if batch is None:
                return
            try:
                self.handler(worker_id, batch)
            except BaseException as error:  # noqa: BLE001 - must not kill the worker
                _fail_batch(batch, error)
            finally:
                self._idle.put(worker_id)

    def join(self, timeout: float | None = None) -> None:
        """Wait for every worker to exit (send :meth:`shutdown` first)."""
        for thread in self._threads:
            thread.join(timeout)

    @property
    def alive(self) -> bool:
        """True while any worker thread is still running."""
        return any(thread.is_alive() for thread in self._threads)


class MicroBatchWorkerPool:
    """The PR-2 pool: each worker loops its own batcher over the shared queue."""

    def __init__(self, num_workers: int, batcher: MicroBatcher, handler: BatchHandler) -> None:
        self.num_workers = num_workers
        self.batcher = batcher
        self.handler = handler
        self._threads: list[threading.Thread] = []

    def start(self) -> None:
        """Start every worker's batcher loop (idempotent)."""
        if self._threads:
            return
        for worker_id in range(self.num_workers):
            thread = threading.Thread(
                target=self._run,
                args=(worker_id,),
                name=f"repro-service-worker-{worker_id}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _run(self, worker_id: int) -> None:
        while True:
            batch = self.batcher.next_batch()
            if not batch:
                return
            try:
                self.handler(worker_id, batch)
            except BaseException as error:  # noqa: BLE001 - must not kill the worker
                _fail_batch(batch, error)

    def join(self, timeout: float | None = None) -> None:
        """Wait for every worker to exit (the queue must be closed first)."""
        for thread in self._threads:
            thread.join(timeout)

    @property
    def alive(self) -> bool:
        """True while any worker thread is still running."""
        return any(thread.is_alive() for thread in self._threads)
