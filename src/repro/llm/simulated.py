"""A simulated ChatGPT oracle for the LLM comparison experiments (Section V-D).

The paper calls GPT-3.5 Turbo for two tasks: matching triples around an EA
pair (ChatGPT-match), judging perturbation-based prompts (ChatGPT-perturb),
and verifying EA pairs from their names and local triples.  An offline
reproduction cannot call the API, so :class:`SimulatedChatGPT` implements a
*name-based* oracle with the same information channel (surface names, not
graph structure) and the same documented failure modes:

* **hallucination** — with a configurable probability the oracle returns a
  confident but wrong answer (a spurious triple match, a flipped verdict);
* **number blindness** — entity names that differ only in digits (e.g.
  ``NVIDIA GeForce 400`` vs ``NVIDIA GeForce 500``) are treated as the
  same, which the paper identifies as ChatGPT's main verification error;
* **no structural knowledge** — decisions use names only, never relation
  functionality or graph topology.

This keeps the comparison experiments (Tables V and VI) meaningful: ExEA
reasons over structure, the simulated LLM reasons over names, and fusing
the two improves both — the qualitative finding of the paper.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass

from ..core.repair.rules import relation_name_similarity
from ..kg import Triple


def strip_namespace(name: str) -> str:
    """Drop a ``prefix:`` namespace from an entity name."""
    return name.split(":", 1)[1] if ":" in name else name


def normalize_name(name: str, ignore_numbers: bool = False) -> str:
    """Lowercase, drop the namespace and collapse separators (optionally digits)."""
    text = strip_namespace(name).lower()
    text = re.sub(r"[_\-./]+", " ", text)
    if ignore_numbers:
        text = re.sub(r"\d+", "", text)
    return " ".join(text.split())


def name_similarity(name1: str, name2: str, ignore_numbers: bool = False) -> float:
    """Character-trigram similarity of two (normalised) entity names."""
    return relation_name_similarity(
        normalize_name(name1, ignore_numbers), normalize_name(name2, ignore_numbers)
    )


@dataclass
class LLMUsage:
    """Book-keeping of simulated API calls (stands in for token accounting)."""

    num_calls: int = 0
    num_hallucinations: int = 0


class SimulatedChatGPT:
    """Deterministic, seeded stand-in for the GPT-3.5 Turbo calls of the paper."""

    def __init__(
        self,
        hallucination_rate: float = 0.15,
        number_blindness: bool = True,
        match_threshold: float = 0.55,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= hallucination_rate <= 1.0:
            raise ValueError("hallucination_rate must be within [0, 1]")
        self.hallucination_rate = hallucination_rate
        self.number_blindness = number_blindness
        self.match_threshold = match_threshold
        self._rng = random.Random(seed)
        self.usage = LLMUsage()

    # ------------------------------------------------------------------
    def _hallucinate(self) -> bool:
        roll = self._rng.random() < self.hallucination_rate
        if roll:
            self.usage.num_hallucinations += 1
        return roll

    def _triple_text_similarity(self, triple1: Triple, triple2: Triple) -> float:
        """Surface similarity of two triples (entities + relation names)."""
        head = name_similarity(triple1.head, triple2.head, self.number_blindness)
        tail = name_similarity(triple1.tail, triple2.tail, self.number_blindness)
        relation = relation_name_similarity(triple1.relation, triple2.relation)
        return (head + tail + relation) / 3.0

    # ------------------------------------------------------------------
    # ChatGPT (match): find matched triples around an EA pair
    # ------------------------------------------------------------------
    def match_triples(
        self, triples1: list[Triple], triples2: list[Triple]
    ) -> list[tuple[Triple, Triple, float]]:
        """Return triple pairs the simulated LLM judges to be equivalent.

        Greedy name-based matching; hallucination occasionally injects a
        random spurious match or drops a valid one, mirroring the errors
        the paper reports for ChatGPT (match).
        """
        self.usage.num_calls += 1
        triples1 = sorted(triples1)
        triples2 = sorted(triples2)
        matches: list[tuple[Triple, Triple, float]] = []
        used2: set[Triple] = set()
        for triple1 in triples1:
            best_score = 0.0
            best_triple = None
            for triple2 in triples2:
                if triple2 in used2:
                    continue
                score = self._triple_text_similarity(triple1, triple2)
                if score > best_score:
                    best_score = score
                    best_triple = triple2
            if best_triple is None:
                continue
            if self._hallucinate():
                # Either drop a valid match or fabricate a weak one.
                if best_score >= self.match_threshold:
                    continue
                matches.append((triple1, best_triple, best_score))
                used2.add(best_triple)
                continue
            if best_score >= self.match_threshold:
                matches.append((triple1, best_triple, best_score))
                used2.add(best_triple)
        return matches

    # ------------------------------------------------------------------
    # ChatGPT (perturb): judge triple importance from perturbation prompts
    # ------------------------------------------------------------------
    def judge_importance(
        self, triple: Triple, source: str, target: str, prediction_change: float
    ) -> float:
        """Importance score the simulated LLM assigns to one perturbed triple.

        The prompt the paper builds contains the perturbation's effect on
        the model prediction; the LLM mixes that signal with its own
        name-based prior and a hallucination term (limited prompt length
        and hallucinations are the reasons ChatGPT-perturb underperforms).
        """
        self.usage.num_calls += 1
        name_prior = max(
            name_similarity(triple.head, target, self.number_blindness),
            name_similarity(triple.tail, target, self.number_blindness),
            name_similarity(triple.head, source, self.number_blindness),
            name_similarity(triple.tail, source, self.number_blindness),
        )
        score = 0.5 * abs(prediction_change) + 0.5 * name_prior
        if self._hallucinate():
            score = self._rng.random()
        return score

    # ------------------------------------------------------------------
    # EA verification
    # ------------------------------------------------------------------
    def verify_pair(
        self,
        source: str,
        target: str,
        triples1: list[Triple],
        triples2: list[Triple],
    ) -> tuple[bool, float]:
        """Judge whether an EA pair is correct from names and local triples.

        Returns ``(verdict, confidence)``.  Number blindness makes the
        oracle accept pairs whose names differ only in version numbers, and
        sparse evidence (few matching neighbour names) lowers confidence —
        both failure modes discussed in Section V-D.2.
        """
        self.usage.num_calls += 1
        own = name_similarity(source, target, self.number_blindness)
        neighbor_scores = []
        for triple1 in sorted(triples1)[:10]:
            other1 = triple1.other_entity(source) if triple1.contains_entity(source) else triple1.tail
            best = 0.0
            for triple2 in sorted(triples2)[:10]:
                other2 = (
                    triple2.other_entity(target) if triple2.contains_entity(target) else triple2.tail
                )
                best = max(best, name_similarity(other1, other2, self.number_blindness))
            neighbor_scores.append(best)
        neighbor = sum(neighbor_scores) / len(neighbor_scores) if neighbor_scores else 0.0
        confidence = 0.6 * own + 0.4 * neighbor
        if self._hallucinate():
            confidence = 1.0 - confidence
        return confidence >= 0.5, confidence
