"""EA verification: ChatGPT vs ExEA vs their fusion (Section V-D.2, Table VI).

Each EA pair is treated as a claim and the local relation triples of its
two entities as evidence.  Three verifiers are provided:

* :class:`LLMVerifier` — the simulated ChatGPT judges the claim from the
  entity names and the evidence triples (name-based reasoning);
* :class:`ExEAVerifier` — ExEA judges the claim from its explanation
  confidence (structure-based reasoning);
* :class:`FusedVerifier` — averages the two confidences, exploiting their
  complementarity (the paper's ChatGPT + ExEA row).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import ExEA
from ..core.adg import low_confidence_threshold
from ..kg import EADataset
from .simulated import SimulatedChatGPT


@dataclass(frozen=True)
class Verdict:
    """Accept/reject decision with the verifier's confidence in acceptance."""

    accepted: bool
    confidence: float


class LLMVerifier:
    """Name-based EA verification through the simulated ChatGPT."""

    name = "ChatGPT"

    def __init__(self, dataset: EADataset, llm: SimulatedChatGPT | None = None) -> None:
        self.dataset = dataset
        self.llm = llm or SimulatedChatGPT()

    def verify(self, source: str, target: str) -> Verdict:
        triples1 = sorted(self.dataset.kg1.triples_of(source))
        triples2 = sorted(self.dataset.kg2.triples_of(target))
        accepted, confidence = self.llm.verify_pair(source, target, triples1, triples2)
        return Verdict(accepted=accepted, confidence=confidence)

    def verify_pairs(self, pairs: list[tuple[str, str]]) -> dict[tuple[str, str], Verdict]:
        return {pair: self.verify(*pair) for pair in pairs}


class ExEAVerifier:
    """Structure-based EA verification through ExEA explanation confidence."""

    name = "ExEA"

    def __init__(self, exea: ExEA, threshold: float | None = None) -> None:
        self.exea = exea
        if threshold is None:
            threshold = low_confidence_threshold(exea.config.adg.theta)
        self.threshold = threshold

    def verify(self, source: str, target: str) -> Verdict:
        confidence = self.exea.confidence(source, target)
        return Verdict(accepted=confidence > self.threshold, confidence=confidence)

    def verify_pairs(self, pairs: list[tuple[str, str]]) -> dict[tuple[str, str], Verdict]:
        reference = self.exea.reference_alignment()
        verdicts = {}
        for source, target in pairs:
            confidence = self.exea.confidence(source, target, reference)
            verdicts[(source, target)] = Verdict(
                accepted=confidence > self.threshold, confidence=confidence
            )
        return verdicts


class FusedVerifier:
    """ChatGPT + ExEA: average the two confidences and threshold at 0.5.

    Structural evidence (ExEA) and textual knowledge (the LLM) fail on
    different pairs, so averaging their confidences removes most errors of
    either — the complementarity observation of Section V-D.2.
    """

    name = "ChatGPT + ExEA"

    def __init__(self, llm_verifier: LLMVerifier, exea_verifier: ExEAVerifier, threshold: float = 0.5) -> None:
        self.llm_verifier = llm_verifier
        self.exea_verifier = exea_verifier
        self.threshold = threshold

    def verify(self, source: str, target: str) -> Verdict:
        llm = self.llm_verifier.verify(source, target)
        exea = self.exea_verifier.verify(source, target)
        confidence = 0.5 * (llm.confidence + exea.confidence)
        return Verdict(accepted=confidence > self.threshold, confidence=confidence)

    def verify_pairs(self, pairs: list[tuple[str, str]]) -> dict[tuple[str, str], Verdict]:
        llm = self.llm_verifier.verify_pairs(pairs)
        exea = self.exea_verifier.verify_pairs(pairs)
        verdicts = {}
        for pair in pairs:
            confidence = 0.5 * (llm[pair].confidence + exea[pair].confidence)
            verdicts[pair] = Verdict(accepted=confidence > self.threshold, confidence=confidence)
        return verdicts


def verdicts_to_bool(verdicts: dict[tuple[str, str], Verdict]) -> dict[tuple[str, str], bool]:
    """Drop the confidences, keeping only accept/reject (for the metrics)."""
    return {pair: verdict.accepted for pair, verdict in verdicts.items()}
