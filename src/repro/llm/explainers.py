"""LLM-based explanation baselines: ChatGPT (match) and ChatGPT (perturb).

Section V-D.1 compares ExEA against two LLM baselines:

* **ChatGPT (match)** follows ExEA's own principle: the LLM is asked to
  find matched triples around the two entities; the matched triples form
  the explanation.
* **ChatGPT (perturb)** follows the post-hoc-explainer recipe of [26]: the
  triples around the pair are perturbed, the EA model's new predictions are
  put into the prompt, and the LLM is asked which triples matter.

Both are implemented on top of :class:`~repro.llm.SimulatedChatGPT`
(see that module for the substitution rationale) and return
:class:`~repro.baselines.BaselineExplanation` objects so the standard
fidelity / sparsity metrics apply.
"""

from __future__ import annotations

from ..baselines.base import BaselineExplainer, BaselineExplanation
from ..baselines.perturbation import PerturbationEngine, PerturbationSample
from ..kg import Triple
from .simulated import SimulatedChatGPT


class ChatGPTMatchExplainer(BaselineExplainer):
    """ChatGPT (match): the LLM pairs up semantically equivalent triples."""

    name = "ChatGPT (match)"

    def __init__(self, model, dataset=None, max_hops: int = 1, llm: SimulatedChatGPT | None = None) -> None:
        super().__init__(model, dataset, max_hops)
        self.llm = llm or SimulatedChatGPT()

    def rank_triples(self, source, target, candidates1, candidates2) -> dict[Triple, float]:
        matches = self.llm.match_triples(sorted(candidates1), sorted(candidates2))
        scores: dict[Triple, float] = {t: 0.0 for t in candidates1 | candidates2}
        for triple1, triple2, score in matches:
            scores[triple1] = max(scores.get(triple1, 0.0), score)
            scores[triple2] = max(scores.get(triple2, 0.0), score)
        return scores

    def explain(self, source: str, target: str, num_triples: int | None = None) -> BaselineExplanation:
        """Select the LLM-matched triples.

        Unlike the perturbation baselines the LLM decides the explanation
        length itself (every matched triple is kept); ``num_triples`` caps
        the selection when provided, mirroring the sparsity control used
        for a fair comparison.
        """
        candidates1, candidates2 = self.candidate_triples(source, target)
        scores = self.rank_triples(source, target, candidates1, candidates2)
        matched = [triple for triple, score in scores.items() if score > 0.0]
        matched.sort(key=lambda t: (-scores[t], t))
        if num_triples is not None:
            matched = matched[:num_triples]
        selected = set(matched)
        return BaselineExplanation(
            source=source,
            target=target,
            selected_triples1={t for t in selected if t in candidates1},
            selected_triples2={t for t in selected if t in candidates2},
            candidate_triples1=candidates1,
            candidate_triples2=candidates2,
            scores=scores,
        )


class ChatGPTPerturbExplainer(BaselineExplainer):
    """ChatGPT (perturb): the LLM judges importance from perturbation prompts."""

    name = "ChatGPT (perturb)"

    #: prompt-length budget: at most this many triples can be described to
    #: the LLM per query (the paper notes the restricted input length of
    #: ChatGPT degrades this baseline)
    max_prompt_triples: int = 20

    def __init__(self, model, dataset=None, max_hops: int = 1, llm: SimulatedChatGPT | None = None) -> None:
        super().__init__(model, dataset, max_hops)
        self.llm = llm or SimulatedChatGPT()

    def rank_triples(self, source, target, candidates1, candidates2) -> dict[Triple, float]:
        ordered1 = sorted(candidates1)
        ordered2 = sorted(candidates2)
        all_triples = (ordered1 + ordered2)[: self.max_prompt_triples]
        scores: dict[Triple, float] = {t: 0.0 for t in candidates1 | candidates2}
        if not all_triples:
            return scores
        engine = PerturbationEngine(self.model, source, target)
        baseline_value = engine.original_value()
        full1 = frozenset(candidates1)
        full2 = frozenset(candidates2)
        for triple in all_triples:
            kept1 = full1 - {triple}
            kept2 = full2 - {triple}
            perturbed_value = engine.prediction_value(PerturbationSample(kept1, kept2))
            change = baseline_value - perturbed_value
            scores[triple] = self.llm.judge_importance(triple, source, target, change)
        return scores
