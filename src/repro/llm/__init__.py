"""Simulated LLM (ChatGPT) substrate for the comparison experiments (Section V-D)."""

from .explainers import ChatGPTMatchExplainer, ChatGPTPerturbExplainer
from .simulated import LLMUsage, SimulatedChatGPT, name_similarity, normalize_name, strip_namespace
from .verification import (
    ExEAVerifier,
    FusedVerifier,
    LLMVerifier,
    Verdict,
    verdicts_to_bool,
)

__all__ = [
    "ChatGPTMatchExplainer",
    "ChatGPTPerturbExplainer",
    "ExEAVerifier",
    "FusedVerifier",
    "LLMUsage",
    "LLMVerifier",
    "SimulatedChatGPT",
    "Verdict",
    "name_similarity",
    "normalize_name",
    "strip_namespace",
    "verdicts_to_bool",
]
