"""Knowledge-graph substrate: triples, graphs, alignments, datasets, I/O."""

from .alignment import AlignmentSet, AlignmentUnionView, mapping_to_alignment
from .dataset import EADataset, split_alignment
from .graph import KGIndex, KnowledgeGraph, MutationRecord
from .io import (
    load_openea_dataset,
    read_links,
    read_triples,
    save_openea_dataset,
    write_links,
    write_triples,
)
from .stats import DatasetStats, KGStats
from .triple import Triple, entities_of, make_triples, relations_of

__all__ = [
    "AlignmentSet",
    "AlignmentUnionView",
    "DatasetStats",
    "EADataset",
    "KGIndex",
    "KGStats",
    "KnowledgeGraph",
    "MutationRecord",
    "Triple",
    "entities_of",
    "load_openea_dataset",
    "make_triples",
    "mapping_to_alignment",
    "read_links",
    "read_triples",
    "relations_of",
    "save_openea_dataset",
    "split_alignment",
    "write_links",
    "write_triples",
]
