"""Relation triples, the atomic unit of a knowledge graph.

The paper (Section II-B) defines a KG as ``K = (E, R, T)`` where ``T`` is a
set of relation triples ``(subject, relation, object)``.  This module
provides the :class:`Triple` value type used throughout the library, plus a
few helpers for working with collections of triples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence


@dataclass(frozen=True, slots=True, order=True)
class Triple:
    """A single relation triple ``(head, relation, tail)``.

    Entities and relations are referred to by their string identifiers
    (URIs or plain names).  Triples are immutable and hashable so they can
    be stored in sets, used as dictionary keys, and compared structurally.
    """

    head: str
    relation: str
    tail: str

    def reversed(self) -> "Triple":
        """Return the triple with head and tail swapped.

        The relation name is kept as-is; callers that need an explicit
        inverse-relation marker should rename it themselves.
        """
        return Triple(self.tail, self.relation, self.head)

    def entities(self) -> tuple[str, str]:
        """Return the ``(head, tail)`` entity pair of this triple."""
        return (self.head, self.tail)

    def contains_entity(self, entity: str) -> bool:
        """Return ``True`` if *entity* appears as head or tail."""
        return entity == self.head or entity == self.tail

    def other_entity(self, entity: str) -> str:
        """Return the entity on the opposite side of *entity*.

        Raises:
            ValueError: if *entity* is neither the head nor the tail.
        """
        if entity == self.head:
            return self.tail
        if entity == self.tail:
            return self.head
        raise ValueError(f"entity {entity!r} does not appear in {self}")

    def as_tuple(self) -> tuple[str, str, str]:
        """Return the plain ``(head, relation, tail)`` tuple."""
        return (self.head, self.relation, self.tail)

    def __iter__(self) -> Iterator[str]:
        return iter((self.head, self.relation, self.tail))

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"({self.head}, {self.relation}, {self.tail})"


def make_triples(raw: Iterable[Sequence[str]]) -> list[Triple]:
    """Convert an iterable of ``(h, r, t)`` sequences into :class:`Triple` objects.

    Already-constructed :class:`Triple` instances pass through unchanged.

    Raises:
        ValueError: if an element does not have exactly three components.
    """
    triples: list[Triple] = []
    for item in raw:
        if isinstance(item, Triple):
            triples.append(item)
            continue
        parts = tuple(item)
        if len(parts) != 3:
            raise ValueError(f"expected (head, relation, tail), got {item!r}")
        triples.append(Triple(*parts))
    return triples


def entities_of(triples: Iterable[Triple]) -> set[str]:
    """Return the set of all entities mentioned by *triples*."""
    found: set[str] = set()
    for triple in triples:
        found.add(triple.head)
        found.add(triple.tail)
    return found


def relations_of(triples: Iterable[Triple]) -> set[str]:
    """Return the set of all relations mentioned by *triples*."""
    return {triple.relation for triple in triples}
