"""Knowledge graph container with the indexes ExEA relies on.

A :class:`KnowledgeGraph` stores entities, relations and triples and
maintains adjacency indexes (outgoing/incoming triples per entity,
triples per relation) plus relation *functionality* statistics, which the
ADG edge-weight computation of the paper (Section III-B, Eq. 3-5, following
PARIS [2]) is built on.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator, Mapping, Sequence

from .triple import Triple, make_triples


class KnowledgeGraph:
    """A knowledge graph ``K = (E, R, T)`` with adjacency and functionality indexes.

    Args:
        triples: the relation triples of the graph.
        name: optional human-readable name (e.g. ``"zh"`` or ``"dbpedia"``).
        entities: optional explicit entity set; entities appearing in triples
            are always included, this argument only adds isolated entities.
    """

    def __init__(
        self,
        triples: Iterable[Triple | Sequence[str]] = (),
        name: str = "kg",
        entities: Iterable[str] = (),
    ) -> None:
        self.name = name
        self._triples: set[Triple] = set()
        self._entities: set[str] = set(entities)
        self._relations: set[str] = set()
        self._outgoing: dict[str, set[Triple]] = defaultdict(set)
        self._incoming: dict[str, set[Triple]] = defaultdict(set)
        self._by_relation: dict[str, set[Triple]] = defaultdict(set)
        self._functionality_cache: dict[str, float] | None = None
        self._inverse_functionality_cache: dict[str, float] | None = None
        for triple in make_triples(triples):
            self.add_triple(triple)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_triple(self, triple: Triple | Sequence[str]) -> None:
        """Add a triple (and its entities/relation) to the graph."""
        if not isinstance(triple, Triple):
            head, relation, tail = triple
            triple = Triple(head, relation, tail)
        if triple in self._triples:
            return
        self._triples.add(triple)
        self._entities.add(triple.head)
        self._entities.add(triple.tail)
        self._relations.add(triple.relation)
        self._outgoing[triple.head].add(triple)
        self._incoming[triple.tail].add(triple)
        self._by_relation[triple.relation].add(triple)
        self._invalidate_caches()

    def add_entity(self, entity: str) -> None:
        """Add an isolated entity (no triples required)."""
        self._entities.add(entity)

    def remove_triple(self, triple: Triple) -> None:
        """Remove a triple from the graph.

        Entities and relations are kept even if they become isolated, so
        that embeddings indexed by entity id remain valid after removal
        (this mirrors the fidelity protocol of Section V-B.2, which removes
        triples but keeps the entity inventory fixed).
        """
        if triple not in self._triples:
            return
        self._triples.discard(triple)
        self._outgoing[triple.head].discard(triple)
        self._incoming[triple.tail].discard(triple)
        self._by_relation[triple.relation].discard(triple)
        self._invalidate_caches()

    def remove_triples(self, triples: Iterable[Triple]) -> None:
        """Remove several triples at once."""
        for triple in triples:
            self.remove_triple(triple)

    def _invalidate_caches(self) -> None:
        self._functionality_cache = None
        self._inverse_functionality_cache = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def entities(self) -> set[str]:
        """The entity set ``E`` (returned as a copy-free live set; do not mutate)."""
        return self._entities

    @property
    def relations(self) -> set[str]:
        """The relation set ``R``."""
        return self._relations

    @property
    def triples(self) -> set[Triple]:
        """The triple set ``T``."""
        return self._triples

    def num_entities(self) -> int:
        return len(self._entities)

    def num_relations(self) -> int:
        return len(self._relations)

    def num_triples(self) -> int:
        return len(self._triples)

    def __contains__(self, triple: Triple) -> bool:
        return triple in self._triples

    def __len__(self) -> int:
        return len(self._triples)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KnowledgeGraph(name={self.name!r}, entities={self.num_entities()}, "
            f"relations={self.num_relations()}, triples={self.num_triples()})"
        )

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------
    def outgoing(self, entity: str) -> set[Triple]:
        """Triples where *entity* is the head."""
        return self._outgoing.get(entity, set())

    def incoming(self, entity: str) -> set[Triple]:
        """Triples where *entity* is the tail."""
        return self._incoming.get(entity, set())

    def triples_of(self, entity: str) -> set[Triple]:
        """All triples incident to *entity* (outgoing plus incoming)."""
        return self.outgoing(entity) | self.incoming(entity)

    def triples_with_relation(self, relation: str) -> set[Triple]:
        """All triples using *relation*."""
        return self._by_relation.get(relation, set())

    def neighbors(self, entity: str) -> set[str]:
        """Entities directly connected to *entity* by any triple."""
        found: set[str] = set()
        for triple in self.outgoing(entity):
            found.add(triple.tail)
        for triple in self.incoming(entity):
            found.add(triple.head)
        found.discard(entity)
        return found

    def degree(self, entity: str) -> int:
        """Number of triples incident to *entity*."""
        return len(self.outgoing(entity)) + len(self.incoming(entity))

    def triples_within_hops(self, entity: str, hops: int = 1) -> set[Triple]:
        """All triples within *hops* hops of *entity*.

        This is the candidate set ``T_e`` of the paper (Section II-B): with
        ``hops=1`` it is exactly the triples incident to the entity, with
        ``hops=2`` it additionally contains the triples incident to the
        entity's neighbours, and so on.
        """
        if hops < 1:
            raise ValueError("hops must be >= 1")
        frontier = {entity}
        seen_entities = {entity}
        collected: set[Triple] = set()
        for _ in range(hops):
            next_frontier: set[str] = set()
            for node in frontier:
                for triple in self.triples_of(node):
                    collected.add(triple)
                    other = triple.other_entity(node)
                    if other not in seen_entities:
                        next_frontier.add(other)
            seen_entities |= next_frontier
            frontier = next_frontier
            if not frontier:
                break
        return collected

    def relation_paths(
        self, source: str, target: str, max_length: int = 2
    ) -> list[tuple[Triple, ...]]:
        """Enumerate simple relation paths from *source* to *target*.

        A path is a tuple of triples; each consecutive triple shares an
        entity with the previous one regardless of direction (the paper's
        relation paths ``p = (e1, r1, e1', ..., rn, en')`` also ignore
        direction when walking the graph).  Paths do not revisit entities.
        """
        if max_length < 1:
            raise ValueError("max_length must be >= 1")
        results: list[tuple[Triple, ...]] = []

        def extend(current: str, visited: set[str], path: tuple[Triple, ...]) -> None:
            if len(path) >= max_length:
                return
            for triple in self.triples_of(current):
                nxt = triple.other_entity(current)
                if nxt in visited:
                    continue
                new_path = path + (triple,)
                if nxt == target:
                    results.append(new_path)
                else:
                    extend(nxt, visited | {nxt}, new_path)

        extend(source, {source}, ())
        return results

    # ------------------------------------------------------------------
    # Relation functionality (PARIS-style)
    # ------------------------------------------------------------------
    def functionality(self, relation: str) -> float:
        """Functionality ``func(r) = #distinct heads / #triples`` of a relation.

        A relation with functionality 1.0 maps every head entity to exactly
        one tail (like ``birth_place``); low functionality means a head has
        many tails.  Used for ADG edge weights (Eq. 4).
        """
        if self._functionality_cache is None:
            self._rebuild_functionality_caches()
        assert self._functionality_cache is not None
        return self._functionality_cache.get(relation, 0.0)

    def inverse_functionality(self, relation: str) -> float:
        """Inverse functionality ``ifunc(r) = #distinct tails / #triples``.

        Used for ADG edge weights when the central entity is the head of the
        matched path (Eq. 3).
        """
        if self._inverse_functionality_cache is None:
            self._rebuild_functionality_caches()
        assert self._inverse_functionality_cache is not None
        return self._inverse_functionality_cache.get(relation, 0.0)

    def _rebuild_functionality_caches(self) -> None:
        functionality: dict[str, float] = {}
        inverse_functionality: dict[str, float] = {}
        for relation, triples in self._by_relation.items():
            if not triples:
                functionality[relation] = 0.0
                inverse_functionality[relation] = 0.0
                continue
            heads = {t.head for t in triples}
            tails = {t.tail for t in triples}
            functionality[relation] = len(heads) / len(triples)
            inverse_functionality[relation] = len(tails) / len(triples)
        self._functionality_cache = functionality
        self._inverse_functionality_cache = inverse_functionality

    def functionality_table(self) -> Mapping[str, float]:
        """Return functionality for every relation in the graph."""
        if self._functionality_cache is None:
            self._rebuild_functionality_caches()
        assert self._functionality_cache is not None
        return dict(self._functionality_cache)

    # ------------------------------------------------------------------
    # Copy / subgraph helpers
    # ------------------------------------------------------------------
    def copy(self, name: str | None = None) -> "KnowledgeGraph":
        """Return a deep structural copy of the graph."""
        return KnowledgeGraph(
            self._triples, name=name or self.name, entities=self._entities
        )

    def without_triples(self, triples: Iterable[Triple], name: str | None = None) -> "KnowledgeGraph":
        """Return a copy of the graph with *triples* removed.

        The entity inventory of the original graph is preserved so entity
        indexing (and therefore embedding matrices) stays aligned.
        """
        excluded = set(triples)
        kept = (t for t in self._triples if t not in excluded)
        return KnowledgeGraph(kept, name=name or self.name, entities=self._entities)

    def subgraph_of(self, entities: Iterable[str], name: str | None = None) -> "KnowledgeGraph":
        """Return the induced subgraph over *entities*."""
        entity_set = set(entities)
        kept = (
            t
            for t in self._triples
            if t.head in entity_set and t.tail in entity_set
        )
        return KnowledgeGraph(kept, name=name or f"{self.name}-sub", entities=entity_set)
