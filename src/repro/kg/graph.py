"""Knowledge graph container with the indexes ExEA relies on.

A :class:`KnowledgeGraph` stores entities, relations and triples and
maintains adjacency indexes (outgoing/incoming triples per entity,
triples per relation) plus relation *functionality* statistics, which the
ADG edge-weight computation of the paper (Section III-B, Eq. 3-5, following
PARIS [2]) is built on.

Cache architecture / invalidation contract
------------------------------------------

On top of the set-based adjacency dictionaries, the graph keeps an
array-backed integer snapshot (:class:`KGIndex`, CSR-style incident-triple
arrays keyed by an entity-id map) plus memo tables for the traversal
queries on the explanation hot path:

* ``neighbors(entity)`` — per-entity neighbour sets,
* ``triples_within_hops(entity, h)`` — the candidate sets ``T_e``,
* ``entities_within_hops(entity, h)`` — the matched-neighbour universe,
* ``relation_paths(source, target, h)`` — path enumeration.

All of these are built lazily on first use and dropped wholesale by
:meth:`_invalidate_caches`, which every mutation (``add_triple``,
``remove_triple``, ``add_entity``) funnels through; each invalidation also
bumps the monotonically increasing :attr:`version` counter so that callers
holding *derived* caches (the explanation engine, the repair confidence
oracle) can detect staleness without subscribing to the graph.  The
fidelity protocol mutates graphs mid-experiment, so correctness of this
contract is covered by ``tests/core/test_engine.py``.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from .triple import Triple, make_triples

#: How many mutation records a graph retains.  The log only needs to span
#: the window between two consecutive scoped invalidations of a derived
#: cache; anything older falls back to wholesale invalidation.
MUTATION_LOG_CAPACITY = 4096


@dataclass(frozen=True)
class MutationRecord:
    """One structural mutation of a :class:`KnowledgeGraph`.

    ``version`` is the graph version *after* the mutation was applied, so a
    contiguous run of records reconstructs the exact version history.
    ``triple`` is ``None`` for entity-only mutations (``add_entity``), which
    have an empty structural blast radius.
    """

    op: str  # "add" | "remove" | "add_entity"
    version: int
    triple: Triple | None = None
    entity: str | None = None

    def endpoints(self) -> tuple[str, ...]:
        """The entities whose neighbourhood the mutation touched."""
        if self.triple is not None:
            return (self.triple.head, self.triple.tail)
        return ()


class KGIndex:
    """Array-backed integer adjacency snapshot of a :class:`KnowledgeGraph`.

    The index maps entities/relations to dense integer ids (sorted order,
    so ids are deterministic) and stores the incident triples of every
    entity in CSR form: ``indptr[e]:indptr[e+1]`` delimits the slots of
    entity ``e`` in the parallel ``incident_triples`` (triple ids) and
    ``incident_others`` (opposite-endpoint entity ids) arrays.  Outgoing
    slots precede incoming slots per entity, each in sorted-triple order,
    which makes every traversal below deterministic.

    Instances are immutable snapshots; the owning graph discards its index
    whenever it mutates.
    """

    def __init__(self, kg: "KnowledgeGraph") -> None:
        self.entities: list[str] = sorted(kg.entities)
        self.entity_to_id: dict[str, int] = {e: i for i, e in enumerate(self.entities)}
        self.relations: list[str] = sorted(kg.relations)
        self.relation_to_id: dict[str, int] = {r: i for i, r in enumerate(self.relations)}
        # key= builds each sort key once; dataclass __lt__ would rebuild
        # field tuples per comparison.
        self.triples: list[Triple] = sorted(kg.triples, key=Triple.as_tuple)
        num_entities = len(self.entities)
        num_triples = len(self.triples)
        self.head_ids = np.fromiter(
            (self.entity_to_id[t.head] for t in self.triples), dtype=np.int64, count=num_triples
        )
        self.tail_ids = np.fromiter(
            (self.entity_to_id[t.tail] for t in self.triples), dtype=np.int64, count=num_triples
        )
        self.relation_ids = np.fromiter(
            (self.relation_to_id[t.relation] for t in self.triples), dtype=np.int64, count=num_triples
        )
        endpoints = np.concatenate([self.head_ids, self.tail_ids])
        triple_ids = np.concatenate([np.arange(num_triples, dtype=np.int64)] * 2)
        others = np.concatenate([self.tail_ids, self.head_ids])
        order = np.argsort(endpoints, kind="stable")
        self.incident_triples = triple_ids[order]
        self.incident_others = others[order]
        counts = np.bincount(endpoints, minlength=num_entities)
        self.indptr = np.zeros(num_entities + 1, dtype=np.int64)
        np.cumsum(counts, out=self.indptr[1:])
        self._adjacency: list[list[tuple[int, int]]] | None = None
        self._walk_cache: dict[tuple[int, int], dict[int, list[tuple[tuple[int, ...], tuple[int, ...]]]]] = {}
        self._neighbor_ids_cache: dict[int, list[int]] = {}

    def adjacency(self) -> list[list[tuple[int, int]]]:
        """Per-entity ``(other_id, triple_id)`` lists, derived from the CSR arrays.

        Built lazily on the first traversal: plain-int adjacency lists make
        the (recursive, tiny-frontier) BFS/DFS below several times faster
        than per-slot numpy scalar indexing, while the CSR arrays stay the
        canonical form for vectorised bulk operations.
        """
        if self._adjacency is None:
            others = self.incident_others.tolist()
            triple_ids = self.incident_triples.tolist()
            bounds = self.indptr.tolist()
            self._adjacency = [
                list(zip(others[bounds[e]:bounds[e + 1]], triple_ids[bounds[e]:bounds[e + 1]]))
                for e in range(len(self.entities))
            ]
        return self._adjacency

    # ------------------------------------------------------------------
    def num_entities(self) -> int:
        return len(self.entities)

    def num_triples(self) -> int:
        return len(self.triples)

    def neighbor_ids(self, entity_id: int) -> list[int]:
        """Sorted unique neighbour ids of *entity_id*, excluding itself (memoized).

        Entity ids follow sorted-entity order, so ascending id order equals
        the lexicographic order string-based callers used to sort into —
        integer consumers (e.g. the low-confidence candidate generator)
        inherit the same deterministic iteration for free.
        """
        cached = self._neighbor_ids_cache.get(entity_id)
        if cached is None:
            lo, hi = self.indptr[entity_id], self.indptr[entity_id + 1]
            others = np.unique(self.incident_others[lo:hi])
            cached = [i for i in others.tolist() if i != entity_id]
            self._neighbor_ids_cache[entity_id] = cached
        return cached

    def _bfs(self, entity_id: int, hops: int) -> tuple[set[int], set[int]]:
        """Breadth-first expansion; returns (seen entity ids, collected triple ids)."""
        adjacency = self.adjacency()
        seen = {entity_id}
        collected: set[int] = set()
        frontier = [entity_id]
        for _ in range(hops):
            next_frontier: list[int] = []
            for node in frontier:
                for other, triple_id in adjacency[node]:
                    collected.add(triple_id)
                    if other not in seen:
                        seen.add(other)
                        next_frontier.append(other)
            if not next_frontier:
                break
            frontier = next_frontier
        return seen, collected

    def triples_within_hops(self, entity_id: int, hops: int) -> set[int]:
        """Triple ids within *hops* hops of *entity_id* (BFS over the adjacency)."""
        _, triple_ids = self._bfs(entity_id, hops)
        return triple_ids

    def entities_within_hops(self, entity_id: int, hops: int) -> set[int]:
        """Entity ids within *hops* hops of *entity_id*, excluding itself."""
        seen, _ = self._bfs(entity_id, hops)
        seen.discard(entity_id)
        return seen

    def walks_from(
        self, source_id: int, max_length: int
    ) -> dict[int, list[tuple[tuple[int, ...], tuple[int, ...]]]]:
        """All simple walks up to *max_length* hops, grouped by terminal entity.

        Returns ``{terminal_id: [(triple_ids, node_ids), ...]}`` where
        ``node_ids`` is the walk's entity sequence *excluding* the terminal
        (i.e. source plus intermediates — exactly the entities Eq. 2
        averages).  One memoized walk per source replaces one full-ball DFS
        per (source, neighbour) endpoint pair: the per-terminal lists are
        identical — in content *and* order — to a per-target enumeration
        that stops at the target, because a walk never revisits entities
        and recursion follows the same deterministic slot order.

        ``visited`` is a tuple since walks are at most ``max_length`` hops
        deep — linear scans over <= 3 ints beat per-step set allocation.
        """
        key = (source_id, max_length)
        cached = self._walk_cache.get(key)
        if cached is None:
            adjacency = self.adjacency()
            found: dict[int, list[tuple[tuple[int, ...], tuple[int, ...]]]] = {}

            def extend(current: int, visited: tuple[int, ...], path: tuple[int, ...]) -> None:
                deeper = len(path) + 1 < max_length
                for nxt, triple_id in adjacency[current]:
                    if nxt in visited:
                        continue
                    found.setdefault(nxt, []).append((path + (triple_id,), visited))
                    if deeper:
                        extend(nxt, visited + (nxt,), path + (triple_id,))

            extend(source_id, (source_id,), ())
            cached = found
            self._walk_cache[key] = cached
        return cached

    def blast_radius(self, entities: Iterable[str], hops: int) -> set[str]:
        """Entities whose *hops*-hop neighbourhood touches any of *entities*.

        The ball is symmetric: an entity lies within ``hops`` of a seed iff
        the seed lies within ``hops`` of the entity, so the union of BFS
        balls around the mutated endpoints is exactly the set of entities
        whose ``hops``-hop neighbourhood (candidate triples, matched
        neighbours, relation paths) can differ from the previous
        generation.  Computing the ball on the *post-mutation* index is
        conservative for both mutation kinds: an added edge only shrinks
        distances (any entity newly reaching a seed does so through the new
        edge, hence lies in the new ball), and for a removed edge the
        shortest old path from an affected entity to the seed set never
        used the removed edge (it would have hit one of the removed edge's
        endpoints — themselves seeds — earlier), so it survives removal.
        Unknown entity names are ignored.
        """
        affected: set[int] = set()
        expanded: set[int] = set()
        for entity in entities:
            entity_id = self.entity_to_id.get(entity)
            if entity_id is None or entity_id in expanded:
                continue
            expanded.add(entity_id)
            seen, _ = self._bfs(entity_id, hops)
            affected |= seen
        return {self.entities[i] for i in affected}

    def relation_paths(
        self, source_id: int, target_id: int, max_length: int
    ) -> list[tuple[int, ...]]:
        """Simple paths from *source_id* to *target_id* as tuples of triple ids.

        Mirrors the path semantics of the paper (direction-agnostic walks,
        no revisited entities, the target is never an intermediate node) in
        deterministic slot order; served from the grouped walk cache.
        """
        walks = self.walks_from(source_id, max_length)
        return [triple_ids for triple_ids, _ in walks.get(target_id, [])]


class KnowledgeGraph:
    """A knowledge graph ``K = (E, R, T)`` with adjacency and functionality indexes.

    Args:
        triples: the relation triples of the graph.
        name: optional human-readable name (e.g. ``"zh"`` or ``"dbpedia"``).
        entities: optional explicit entity set; entities appearing in triples
            are always included, this argument only adds isolated entities.
    """

    def __init__(
        self,
        triples: Iterable[Triple | Sequence[str]] = (),
        name: str = "kg",
        entities: Iterable[str] = (),
    ) -> None:
        self.name = name
        self._triples: set[Triple] = set()
        self._entities: set[str] = set(entities)
        self._relations: set[str] = set()
        self._outgoing: dict[str, set[Triple]] = defaultdict(set)
        self._incoming: dict[str, set[Triple]] = defaultdict(set)
        self._by_relation: dict[str, set[Triple]] = defaultdict(set)
        self._functionality_cache: dict[str, float] | None = None
        self._inverse_functionality_cache: dict[str, float] | None = None
        self._version = 0
        self._mutation_log: deque[MutationRecord] = deque(maxlen=MUTATION_LOG_CAPACITY)
        self._index: KGIndex | None = None
        self._neighbor_cache: dict[str, frozenset[str]] = {}
        self._hop_triples_cache: dict[tuple[str, int], frozenset[Triple]] = {}
        self._hop_entities_cache: dict[tuple[str, int], frozenset[str]] = {}
        self._path_cache: dict[tuple[str, str, int], tuple[tuple[Triple, ...], ...]] = {}
        for triple in make_triples(triples):
            self.add_triple(triple)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_triple(self, triple: Triple | Sequence[str]) -> None:
        """Add a triple (and its entities/relation) to the graph."""
        if not isinstance(triple, Triple):
            head, relation, tail = triple
            triple = Triple(head, relation, tail)
        if triple in self._triples:
            return
        self._triples.add(triple)
        self._entities.add(triple.head)
        self._entities.add(triple.tail)
        self._relations.add(triple.relation)
        self._outgoing[triple.head].add(triple)
        self._incoming[triple.tail].add(triple)
        self._by_relation[triple.relation].add(triple)
        self._invalidate_caches()
        self._mutation_log.append(
            MutationRecord(op="add", version=self._version, triple=triple)
        )

    def add_entity(self, entity: str) -> None:
        """Add an isolated entity (no triples required)."""
        if entity in self._entities:
            return
        self._entities.add(entity)
        self._invalidate_caches()
        self._mutation_log.append(
            MutationRecord(op="add_entity", version=self._version, entity=entity)
        )

    def remove_triple(self, triple: Triple | Sequence[str]) -> None:
        """Remove a triple from the graph.

        Entities and relations are kept even if they become isolated, so
        that embeddings indexed by entity id remain valid after removal
        (this mirrors the fidelity protocol of Section V-B.2, which removes
        triples but keeps the entity inventory fixed).
        """
        if not isinstance(triple, Triple):
            head, relation, tail = triple
            triple = Triple(head, relation, tail)
        if triple not in self._triples:
            return
        self._triples.discard(triple)
        self._outgoing[triple.head].discard(triple)
        self._incoming[triple.tail].discard(triple)
        self._by_relation[triple.relation].discard(triple)
        self._invalidate_caches()
        self._mutation_log.append(
            MutationRecord(op="remove", version=self._version, triple=triple)
        )

    def remove_triples(self, triples: Iterable[Triple]) -> None:
        """Remove several triples at once."""
        for triple in triples:
            self.remove_triple(triple)

    def _invalidate_caches(self) -> None:
        """Drop every derived structure and advance the mutation counter."""
        self._functionality_cache = None
        self._inverse_functionality_cache = None
        self._index = None
        self._neighbor_cache.clear()
        self._hop_triples_cache.clear()
        self._hop_entities_cache.clear()
        self._path_cache.clear()
        self._version += 1

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Mutation counter; increases whenever the graph structure changes.

        Derived caches outside the graph (explanation engine, confidence
        oracle) key on this value to detect staleness.
        """
        return self._version

    def mutations_since(self, version: int) -> list[MutationRecord] | None:
        """The ordered mutations applied after *version*, or ``None``.

        ``None`` means the bounded mutation log no longer covers the span
        ``(version, current]`` (the caller was too far behind, or asked
        about an unknown/future version) and the caller must fall back to
        wholesale invalidation.  Versions advance by exactly one per
        logged mutation, so coverage reduces to the oldest retained record
        being at most ``version + 1``.
        """
        if version == self._version:
            return []
        if version > self._version:
            return None
        log = self._mutation_log
        if not log or log[0].version > version + 1:
            return None
        return [record for record in log if record.version > version]

    def blast_radius(
        self,
        records: Iterable[MutationRecord],
        hops: int,
        include_relations: bool = False,
    ) -> set[str]:
        """Entities whose *hops*-hop neighbourhood the *records* may have changed.

        Unions the :meth:`KGIndex.blast_radius` balls around every mutated
        endpoint on the **current** (post-mutation) index; see that method
        for why the post-mutation ball is conservative.  The multi-record
        argument extends inductively: with every mutated endpoint a seed,
        removing a later edge cannot cut the shortest path from an affected
        entity to the seed set, so the final-graph ball covers each
        intermediate generation's ball.

        With ``include_relations`` the seeds additionally include the
        endpoints of every current triple carrying a mutated relation:
        mutating a triple of relation ``r`` shifts the *global*
        functionality statistics ``func(r)``/``ifunc(r)``, which feed the
        ADG edge weights of any pair whose neighbourhood contains an
        ``r``-triple — and every such pair lies within ``hops`` of one of
        those triples' endpoints.
        """
        seeds: set[str] = set()
        relations: set[str] = set()
        for record in records:
            seeds.update(record.endpoints())
            if include_relations and record.triple is not None:
                relations.add(record.triple.relation)
        for relation in relations:
            for triple in self.triples_with_relation(relation):
                seeds.add(triple.head)
                seeds.add(triple.tail)
        if not seeds:
            return set()
        return self.index().blast_radius(seeds, hops)

    def index(self) -> KGIndex:
        """The integer adjacency snapshot, built lazily and cached until mutation."""
        if self._index is None:
            self._index = KGIndex(self)
        return self._index

    @property
    def entities(self) -> set[str]:
        """The entity set ``E`` (returned as a copy-free live set; do not mutate)."""
        return self._entities

    @property
    def relations(self) -> set[str]:
        """The relation set ``R``."""
        return self._relations

    @property
    def triples(self) -> set[Triple]:
        """The triple set ``T``."""
        return self._triples

    def num_entities(self) -> int:
        return len(self._entities)

    def num_relations(self) -> int:
        return len(self._relations)

    def num_triples(self) -> int:
        return len(self._triples)

    def __contains__(self, triple: Triple) -> bool:
        return triple in self._triples

    def __len__(self) -> int:
        return len(self._triples)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KnowledgeGraph(name={self.name!r}, entities={self.num_entities()}, "
            f"relations={self.num_relations()}, triples={self.num_triples()})"
        )

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------
    def outgoing(self, entity: str) -> set[Triple]:
        """Triples where *entity* is the head."""
        return self._outgoing.get(entity, set())

    def incoming(self, entity: str) -> set[Triple]:
        """Triples where *entity* is the tail."""
        return self._incoming.get(entity, set())

    def triples_of(self, entity: str) -> set[Triple]:
        """All triples incident to *entity* (outgoing plus incoming)."""
        return self.outgoing(entity) | self.incoming(entity)

    def triples_with_relation(self, relation: str) -> set[Triple]:
        """All triples using *relation*."""
        return self._by_relation.get(relation, set())

    def neighbors(self, entity: str) -> set[str]:
        """Entities directly connected to *entity* by any triple (memoized)."""
        cached = self._neighbor_cache.get(entity)
        if cached is None:
            found: set[str] = set()
            for triple in self.outgoing(entity):
                found.add(triple.tail)
            for triple in self.incoming(entity):
                found.add(triple.head)
            found.discard(entity)
            cached = frozenset(found)
            self._neighbor_cache[entity] = cached
        return set(cached)

    def degree(self, entity: str) -> int:
        """Number of triples incident to *entity*."""
        return len(self.outgoing(entity)) + len(self.incoming(entity))

    def triples_within_hops(self, entity: str, hops: int = 1) -> set[Triple]:
        """All triples within *hops* hops of *entity*.

        This is the candidate set ``T_e`` of the paper (Section II-B): with
        ``hops=1`` it is exactly the triples incident to the entity, with
        ``hops=2`` it additionally contains the triples incident to the
        entity's neighbours, and so on.  Computed by an integer BFS over
        the CSR index and memoized per ``(entity, hops)``.
        """
        if hops < 1:
            raise ValueError("hops must be >= 1")
        key = (entity, hops)
        cached = self._hop_triples_cache.get(key)
        if cached is None:
            index = self.index()
            entity_id = index.entity_to_id.get(entity)
            if entity_id is None:
                cached = frozenset()
            else:
                triple_ids = index.triples_within_hops(entity_id, hops)
                cached = frozenset(index.triples[i] for i in triple_ids)
            self._hop_triples_cache[key] = cached
        return set(cached)

    def entities_within_hops(self, entity: str, hops: int) -> frozenset[str]:
        """Entities within *hops* hops of *entity*, excluding itself (memoized).

        The returned frozenset is shared with the cache — treat it as
        immutable.
        """
        if hops < 0:
            raise ValueError("hops must be >= 0")
        key = (entity, hops)
        cached = self._hop_entities_cache.get(key)
        if cached is None:
            index = self.index()
            entity_id = index.entity_to_id.get(entity)
            if entity_id is None or hops == 0:
                cached = frozenset()
            else:
                entity_ids = index.entities_within_hops(entity_id, hops)
                cached = frozenset(index.entities[i] for i in entity_ids)
            self._hop_entities_cache[key] = cached
        return cached

    def relation_paths(
        self, source: str, target: str, max_length: int = 2
    ) -> list[tuple[Triple, ...]]:
        """Enumerate simple relation paths from *source* to *target*.

        A path is a tuple of triples; each consecutive triple shares an
        entity with the previous one regardless of direction (the paper's
        relation paths ``p = (e1, r1, e1', ..., rn, en')`` also ignore
        direction when walking the graph).  Paths do not revisit entities.
        Enumeration runs on the integer index in deterministic order and is
        memoized per ``(source, target, max_length)``.
        """
        if max_length < 1:
            raise ValueError("max_length must be >= 1")
        key = (source, target, max_length)
        cached = self._path_cache.get(key)
        if cached is None:
            index = self.index()
            source_id = index.entity_to_id.get(source)
            target_id = index.entity_to_id.get(target)
            if source_id is None or target_id is None:
                cached = ()
            else:
                cached = tuple(
                    tuple(index.triples[i] for i in path)
                    for path in index.relation_paths(source_id, target_id, max_length)
                )
            self._path_cache[key] = cached
        return list(cached)

    # ------------------------------------------------------------------
    # Relation functionality (PARIS-style)
    # ------------------------------------------------------------------
    def functionality(self, relation: str) -> float:
        """Functionality ``func(r) = #distinct heads / #triples`` of a relation.

        A relation with functionality 1.0 maps every head entity to exactly
        one tail (like ``birth_place``); low functionality means a head has
        many tails.  Used for ADG edge weights (Eq. 4).
        """
        if self._functionality_cache is None:
            self._rebuild_functionality_caches()
        assert self._functionality_cache is not None
        return self._functionality_cache.get(relation, 0.0)

    def inverse_functionality(self, relation: str) -> float:
        """Inverse functionality ``ifunc(r) = #distinct tails / #triples``.

        Used for ADG edge weights when the central entity is the head of the
        matched path (Eq. 3).
        """
        if self._inverse_functionality_cache is None:
            self._rebuild_functionality_caches()
        assert self._inverse_functionality_cache is not None
        return self._inverse_functionality_cache.get(relation, 0.0)

    def _rebuild_functionality_caches(self) -> None:
        functionality: dict[str, float] = {}
        inverse_functionality: dict[str, float] = {}
        for relation, triples in self._by_relation.items():
            if not triples:
                functionality[relation] = 0.0
                inverse_functionality[relation] = 0.0
                continue
            heads = {t.head for t in triples}
            tails = {t.tail for t in triples}
            functionality[relation] = len(heads) / len(triples)
            inverse_functionality[relation] = len(tails) / len(triples)
        self._functionality_cache = functionality
        self._inverse_functionality_cache = inverse_functionality

    def functionality_table(self) -> Mapping[str, float]:
        """Return functionality for every relation in the graph."""
        if self._functionality_cache is None:
            self._rebuild_functionality_caches()
        assert self._functionality_cache is not None
        return dict(self._functionality_cache)

    # ------------------------------------------------------------------
    # Copy / subgraph helpers
    # ------------------------------------------------------------------
    def copy(self, name: str | None = None) -> "KnowledgeGraph":
        """Return a deep structural copy of the graph."""
        return KnowledgeGraph(
            self._triples, name=name or self.name, entities=self._entities
        )

    def without_triples(self, triples: Iterable[Triple], name: str | None = None) -> "KnowledgeGraph":
        """Return a copy of the graph with *triples* removed.

        The entity inventory of the original graph is preserved so entity
        indexing (and therefore embedding matrices) stays aligned.
        """
        excluded = set(triples)
        kept = (t for t in self._triples if t not in excluded)
        return KnowledgeGraph(kept, name=name or self.name, entities=self._entities)

    def subgraph_of(self, entities: Iterable[str], name: str | None = None) -> "KnowledgeGraph":
        """Return the induced subgraph over *entities*."""
        entity_set = set(entities)
        kept = (
            t
            for t in self._triples
            if t.head in entity_set and t.tail in entity_set
        )
        return KnowledgeGraph(kept, name=name or f"{self.name}-sub", entities=entity_set)
