"""Entity alignment datasets: a pair of KGs plus seed / test alignments.

This mirrors the DBP15K / OpenEA dataset layout used in the paper: two KGs,
a training ("seed") alignment ``A_train`` and a held-out alignment that the
model must recover (``A_res`` targets in the paper's notation).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .alignment import AlignmentSet
from .graph import KnowledgeGraph


@dataclass
class EADataset:
    """An entity-alignment dataset.

    Attributes:
        kg1: the source knowledge graph ``K1``.
        kg2: the target knowledge graph ``K2``.
        train_alignment: seed alignment ``A_train`` given to the model.
        test_alignment: gold alignment the model must predict.
        name: dataset name, e.g. ``"ZH-EN"``.
    """

    kg1: KnowledgeGraph
    kg2: KnowledgeGraph
    train_alignment: AlignmentSet
    test_alignment: AlignmentSet
    name: str = "dataset"
    metadata: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def all_alignment(self) -> AlignmentSet:
        """Union of seed and test alignment (the full gold standard)."""
        combined = self.train_alignment.copy()
        combined.update(self.test_alignment.pairs)
        return combined

    def test_sources(self) -> set[str]:
        """Source entities whose counterpart must be predicted."""
        return self.test_alignment.sources()

    def test_targets(self) -> set[str]:
        """Target entities available as prediction candidates."""
        return self.test_alignment.targets()

    def summary(self) -> dict[str, int]:
        """Return basic size statistics of the dataset."""
        return {
            "kg1_entities": self.kg1.num_entities(),
            "kg1_relations": self.kg1.num_relations(),
            "kg1_triples": self.kg1.num_triples(),
            "kg2_entities": self.kg2.num_entities(),
            "kg2_relations": self.kg2.num_relations(),
            "kg2_triples": self.kg2.num_triples(),
            "train_pairs": len(self.train_alignment),
            "test_pairs": len(self.test_alignment),
        }

    def validate(self) -> None:
        """Check internal consistency of the dataset.

        Raises:
            ValueError: if an aligned entity is missing from its KG, or if
                the seed and test alignments overlap.
        """
        for source, target in self.all_alignment():
            if source not in self.kg1.entities:
                raise ValueError(f"aligned source entity {source!r} missing from kg1")
            if target not in self.kg2.entities:
                raise ValueError(f"aligned target entity {target!r} missing from kg2")
        overlap = self.train_alignment.pairs & self.test_alignment.pairs
        if overlap:
            raise ValueError(f"{len(overlap)} pairs appear in both train and test alignment")

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def with_noisy_seed(self, num_corrupted: int, seed: int = 0) -> "EADataset":
        """Return a copy of the dataset with a corrupted seed alignment.

        Implements the noise protocol of Section V-E: a fixed number of
        seed pairs have their target entities randomly disrupted.
        """
        rng = random.Random(seed)
        noisy_train = self.train_alignment.with_noise(num_corrupted, rng=rng)
        return EADataset(
            kg1=self.kg1,
            kg2=self.kg2,
            train_alignment=noisy_train,
            test_alignment=self.test_alignment,
            name=f"{self.name} (Noise)",
            metadata={**self.metadata, "seed_noise_pairs": num_corrupted},
        )

    def without_triples(self, kg1_removed=(), kg2_removed=()) -> "EADataset":
        """Return a copy of the dataset with triples removed from either KG.

        This supports the fidelity protocol (Section V-B.2): remove the
        candidate triples that are *not* part of an explanation, retrain the
        model, and check whether the prediction is preserved.
        """
        return EADataset(
            kg1=self.kg1.without_triples(kg1_removed),
            kg2=self.kg2.without_triples(kg2_removed),
            train_alignment=self.train_alignment.copy(),
            test_alignment=self.test_alignment.copy(),
            name=self.name,
            metadata=dict(self.metadata),
        )


def split_alignment(
    alignment: AlignmentSet, train_ratio: float = 0.3, seed: int = 0
) -> tuple[AlignmentSet, AlignmentSet]:
    """Split a gold alignment into seed (train) and test portions.

    DBP15K and OpenEA conventionally use 30% of the 15k gold pairs as seed
    alignment; the same default is used here.
    """
    if not 0.0 < train_ratio < 1.0:
        raise ValueError("train_ratio must be in (0, 1)")
    rng = random.Random(seed)
    pairs = sorted(alignment.pairs)
    rng.shuffle(pairs)
    cut = int(round(len(pairs) * train_ratio))
    return AlignmentSet(pairs[:cut]), AlignmentSet(pairs[cut:])
