"""Descriptive statistics for KGs and EA datasets.

These are used by the dataset registry tests (to check that the synthetic
benchmarks reproduce the structural differences between DBP15K / OpenEA
datasets the paper relies on, e.g. the higher triple density of FR-EN) and
by the examples to print dataset overviews.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean

from .dataset import EADataset
from .graph import KnowledgeGraph


@dataclass(frozen=True)
class KGStats:
    """Summary statistics of one knowledge graph."""

    num_entities: int
    num_relations: int
    num_triples: int
    average_degree: float
    max_degree: int
    density: float
    average_functionality: float

    @classmethod
    def of(cls, kg: KnowledgeGraph) -> "KGStats":
        entities = kg.entities
        degrees = [kg.degree(e) for e in entities] or [0]
        num_entities = kg.num_entities()
        num_triples = kg.num_triples()
        density = num_triples / max(num_entities, 1)
        functionality = kg.functionality_table()
        avg_func = mean(functionality.values()) if functionality else 0.0
        return cls(
            num_entities=num_entities,
            num_relations=kg.num_relations(),
            num_triples=num_triples,
            average_degree=mean(degrees),
            max_degree=max(degrees),
            density=density,
            average_functionality=avg_func,
        )


@dataclass(frozen=True)
class DatasetStats:
    """Summary statistics of an EA dataset (both KGs and the alignments)."""

    name: str
    kg1: KGStats
    kg2: KGStats
    train_pairs: int
    test_pairs: int
    relation_overlap: float

    @classmethod
    def of(cls, dataset: EADataset) -> "DatasetStats":
        relations1 = dataset.kg1.relations
        relations2 = dataset.kg2.relations
        union = relations1 | relations2
        overlap = len(relations1 & relations2) / len(union) if union else 0.0
        return cls(
            name=dataset.name,
            kg1=KGStats.of(dataset.kg1),
            kg2=KGStats.of(dataset.kg2),
            train_pairs=len(dataset.train_alignment),
            test_pairs=len(dataset.test_alignment),
            relation_overlap=overlap,
        )

    def as_rows(self) -> list[tuple[str, str]]:
        """Return printable ``(label, value)`` rows for report tables."""
        return [
            ("dataset", self.name),
            ("KG1 entities/relations/triples",
             f"{self.kg1.num_entities}/{self.kg1.num_relations}/{self.kg1.num_triples}"),
            ("KG2 entities/relations/triples",
             f"{self.kg2.num_entities}/{self.kg2.num_relations}/{self.kg2.num_triples}"),
            ("KG1 density", f"{self.kg1.density:.2f}"),
            ("KG2 density", f"{self.kg2.density:.2f}"),
            ("train pairs", str(self.train_pairs)),
            ("test pairs", str(self.test_pairs)),
            ("relation name overlap", f"{self.relation_overlap:.2f}"),
        ]
