"""OpenEA-format dataset I/O.

The OpenEA benchmark distributes each dataset as a directory of
tab-separated files:

* ``rel_triples_1`` / ``rel_triples_2`` — relation triples of the two KGs,
* ``ent_links`` — the gold entity alignment,
* optionally ``721_5fold/<k>/train_links`` / ``test_links`` splits.

This module reads and writes that layout so real DBP15K/OpenEA dumps can be
dropped into the reproduction, and so synthetic datasets can be exported in
the same format.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from .alignment import AlignmentSet
from .dataset import EADataset, split_alignment
from .graph import KnowledgeGraph
from .triple import Triple


def read_triples(path: str | Path) -> list[Triple]:
    """Read tab-separated ``head relation tail`` lines into triples.

    Blank lines are skipped.  Raises ``ValueError`` on malformed lines.
    """
    triples: list[Triple] = []
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line.strip():
                continue
            parts = line.split("\t")
            if len(parts) != 3:
                raise ValueError(f"{path}:{line_number}: expected 3 columns, got {len(parts)}")
            triples.append(Triple(*parts))
    return triples


def write_triples(triples: Iterable[Triple], path: str | Path) -> None:
    """Write triples as tab-separated lines (sorted for determinism)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = sorted(f"{t.head}\t{t.relation}\t{t.tail}" for t in triples)
    path.write_text("\n".join(lines) + ("\n" if lines else ""), encoding="utf-8")


def read_links(path: str | Path) -> AlignmentSet:
    """Read tab-separated entity links (``source<TAB>target``)."""
    alignment = AlignmentSet()
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line.strip():
                continue
            parts = line.split("\t")
            if len(parts) != 2:
                raise ValueError(f"{path}:{line_number}: expected 2 columns, got {len(parts)}")
            alignment.add(parts[0], parts[1])
    return alignment


def write_links(alignment: AlignmentSet, path: str | Path) -> None:
    """Write an alignment as tab-separated lines (sorted for determinism)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = sorted(f"{s}\t{t}" for s, t in alignment)
    path.write_text("\n".join(lines) + ("\n" if lines else ""), encoding="utf-8")


def load_openea_dataset(
    directory: str | Path,
    name: str | None = None,
    train_ratio: float = 0.3,
    fold: str | None = None,
    seed: int = 0,
) -> EADataset:
    """Load an OpenEA-style dataset directory.

    If *fold* is given (e.g. ``"721_5fold/1"``) the pre-computed
    ``train_links`` / ``test_links`` files under that sub-directory are used;
    otherwise ``ent_links`` is split with *train_ratio*.
    """
    directory = Path(directory)
    kg1 = KnowledgeGraph(read_triples(directory / "rel_triples_1"), name="kg1")
    kg2 = KnowledgeGraph(read_triples(directory / "rel_triples_2"), name="kg2")
    if fold is not None:
        fold_dir = directory / fold
        train = read_links(fold_dir / "train_links")
        test = read_links(fold_dir / "test_links")
    else:
        gold = read_links(directory / "ent_links")
        train, test = split_alignment(gold, train_ratio=train_ratio, seed=seed)
    return EADataset(
        kg1=kg1,
        kg2=kg2,
        train_alignment=train,
        test_alignment=test,
        name=name or directory.name,
    )


def save_openea_dataset(dataset: EADataset, directory: str | Path) -> None:
    """Write *dataset* to *directory* in the OpenEA layout.

    The train/test split is additionally stored under ``721_5fold/1/`` so a
    round-trip via :func:`load_openea_dataset` with ``fold="721_5fold/1"``
    reproduces the exact split.
    """
    directory = Path(directory)
    write_triples(dataset.kg1.triples, directory / "rel_triples_1")
    write_triples(dataset.kg2.triples, directory / "rel_triples_2")
    write_links(dataset.all_alignment(), directory / "ent_links")
    write_links(dataset.train_alignment, directory / "721_5fold" / "1" / "train_links")
    write_links(dataset.test_alignment, directory / "721_5fold" / "1" / "test_links")
