"""Entity alignment sets.

An :class:`AlignmentSet` is a set of ``(source_entity, target_entity)``
pairs ("owl:sameAs" links in the paper's notation).  It supports the
operations the ExEA repair module needs: membership by either side,
one-to-many conflict detection, accuracy against a gold alignment, and
noise injection for the robustness experiments (Section V-E).
"""

from __future__ import annotations

import random
from collections import defaultdict
from typing import Iterable, Iterator, Mapping


EntityPair = tuple[str, str]

#: Shared empty result of the copy-free lookup views (frozen so a caller
#: mutating a miss result cannot poison every other alignment's lookups).
_EMPTY_SET: frozenset[str] = frozenset()


class AlignmentSet:
    """A collection of entity alignment pairs across two KGs.

    The set may contain one-to-many alignments (several source entities
    mapped to one target or vice versa); detecting and repairing those is
    part of the ExEA pipeline, so the container does not forbid them.
    """

    def __init__(self, pairs: Iterable[EntityPair] = ()) -> None:
        self._pairs: set[EntityPair] = set()
        self._by_source: dict[str, set[str]] = defaultdict(set)
        self._by_target: dict[str, set[str]] = defaultdict(set)
        self._version = 0
        for source, target in pairs:
            self.add(source, target)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Mutation counter; increases whenever a pair is added or removed.

        Lets derived caches (e.g. the repair confidence oracle) detect
        staleness without copying the set.
        """
        return self._version

    def add(self, source: str, target: str) -> None:
        """Add an alignment pair ``(source, target)``."""
        pair = (source, target)
        if pair in self._pairs:
            return
        self._pairs.add(pair)
        self._by_source[source].add(target)
        self._by_target[target].add(source)
        self._version += 1

    def remove(self, source: str, target: str) -> None:
        """Remove an alignment pair if present."""
        pair = (source, target)
        if pair not in self._pairs:
            return
        self._pairs.discard(pair)
        self._by_source[source].discard(target)
        self._by_target[target].discard(source)
        self._version += 1

    def update(self, pairs: Iterable[EntityPair]) -> None:
        """Add several pairs."""
        for source, target in pairs:
            self.add(source, target)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @property
    def pairs(self) -> set[EntityPair]:
        return self._pairs

    def __contains__(self, pair: EntityPair) -> bool:
        return pair in self._pairs

    def __len__(self) -> int:
        return len(self._pairs)

    def __iter__(self) -> Iterator[EntityPair]:
        return iter(self._pairs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AlignmentSet):
            return NotImplemented
        return self._pairs == other._pairs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AlignmentSet({len(self._pairs)} pairs)"

    def sources(self) -> set[str]:
        """All source-side entities with at least one alignment."""
        return {s for s, targets in self._by_source.items() if targets}

    def targets(self) -> set[str]:
        """All target-side entities with at least one alignment."""
        return {t for t, sources in self._by_target.items() if sources}

    def targets_of(self, source: str) -> set[str]:
        """Target entities aligned to *source*."""
        return set(self._by_source.get(source, set()))

    def targets_view(self, source: str) -> set[str] | frozenset[str]:
        """Copy-free view of the targets aligned to *source* — do not mutate.

        The explanation hot path performs one such lookup per neighbour per
        pair; skipping the defensive copy of :meth:`targets_of` matters
        there.  Misses return a shared frozen empty set.
        """
        return self._by_source.get(source, _EMPTY_SET)

    def sources_of(self, target: str) -> set[str]:
        """Source entities aligned to *target*."""
        return set(self._by_target.get(target, set()))

    def target_of(self, source: str) -> str | None:
        """The single target aligned with *source*, or ``None``.

        Raises:
            ValueError: if *source* participates in a one-to-many alignment.
        """
        targets = self._by_source.get(source, set())
        if not targets:
            return None
        if len(targets) > 1:
            raise ValueError(f"source {source!r} is aligned to {len(targets)} targets")
        return next(iter(targets))

    def source_of(self, target: str) -> str | None:
        """The single source aligned with *target*, or ``None``."""
        sources = self._by_target.get(target, set())
        if not sources:
            return None
        if len(sources) > 1:
            raise ValueError(f"target {target!r} is aligned to {len(sources)} sources")
        return next(iter(sources))

    def as_dict(self) -> dict[str, str]:
        """Return a source->target mapping.

        Raises:
            ValueError: if the alignment is not one-to-one on the source side.
        """
        mapping: dict[str, str] = {}
        for source, target in self._pairs:
            if source in mapping:
                raise ValueError(f"source {source!r} has multiple targets")
            mapping[source] = target
        return mapping

    def copy(self) -> "AlignmentSet":
        return AlignmentSet(self._pairs)

    # ------------------------------------------------------------------
    # Conflicts & quality
    # ------------------------------------------------------------------
    def is_one_to_one(self) -> bool:
        """True if no entity on either side participates in two pairs."""
        return not self.one_to_many_targets() and not self.one_to_many_sources()

    def one_to_many_targets(self) -> dict[str, set[str]]:
        """Targets aligned with multiple sources (the conflict of Section IV-B)."""
        return {
            target: set(sources)
            for target, sources in self._by_target.items()
            if len(sources) > 1
        }

    def one_to_many_sources(self) -> dict[str, set[str]]:
        """Sources aligned with multiple targets."""
        return {
            source: set(targets)
            for source, targets in self._by_source.items()
            if len(targets) > 1
        }

    def accuracy(self, gold: "AlignmentSet | Iterable[EntityPair]") -> float:
        """Fraction of gold pairs that are present in this alignment.

        This is the repair-experiment metric of Section V-C.1: the
        proportion of correctly aligned entity pairs among the pairs to be
        found.
        """
        gold_pairs = set(gold.pairs if isinstance(gold, AlignmentSet) else gold)
        if not gold_pairs:
            return 0.0
        correct = sum(1 for pair in gold_pairs if pair in self._pairs)
        return correct / len(gold_pairs)

    def precision_recall_f1(
        self, gold: "AlignmentSet | Iterable[EntityPair]"
    ) -> tuple[float, float, float]:
        """Precision, recall and F1 of this alignment against *gold*."""
        gold_pairs = set(gold.pairs if isinstance(gold, AlignmentSet) else gold)
        if not self._pairs or not gold_pairs:
            return (0.0, 0.0, 0.0)
        correct = len(self._pairs & gold_pairs)
        precision = correct / len(self._pairs)
        recall = correct / len(gold_pairs)
        if precision + recall == 0:
            return (precision, recall, 0.0)
        f1 = 2 * precision * recall / (precision + recall)
        return (precision, recall, f1)

    # ------------------------------------------------------------------
    # Noise (Section V-E)
    # ------------------------------------------------------------------
    def with_noise(
        self, num_corrupted: int, rng: random.Random | None = None
    ) -> "AlignmentSet":
        """Return a copy where *num_corrupted* pairs have their targets shuffled.

        The paper's robustness experiment randomly disrupts the entities in
        750 of the 4,500 seed pairs.  We corrupt pairs by permuting the
        target entities among the selected pairs (a derangement-style
        shuffle), which keeps the size of the seed set constant while
        breaking the selected links.
        """
        rng = rng or random.Random(0)
        pairs = sorted(self._pairs)
        if num_corrupted <= 0 or len(pairs) < 2:
            return self.copy()
        num_corrupted = min(num_corrupted, len(pairs))
        chosen_idx = rng.sample(range(len(pairs)), num_corrupted)
        chosen_targets = [pairs[i][1] for i in chosen_idx]
        shuffled = chosen_targets[:]
        # Rotate until no chosen pair keeps its original target (guaranteed
        # to terminate because a single rotation already fixes every slot
        # unless all targets are identical).
        rng.shuffle(shuffled)
        if any(a == b for a, b in zip(chosen_targets, shuffled)) and len(set(chosen_targets)) > 1:
            shuffled = shuffled[1:] + shuffled[:1]
        noisy = AlignmentSet(self._pairs)
        for position, pair_index in enumerate(chosen_idx):
            source, original_target = pairs[pair_index]
            noisy.remove(source, original_target)
            noisy.add(source, shuffled[position])
        return noisy


class AlignmentUnionView:
    """Read-only live union of two alignment sets.

    The repair algorithms repeatedly need "the working alignment plus the
    seed alignment" as the reference for neighbour matching.  Building that
    union as a fresh :class:`AlignmentSet` copy per confidence query is
    O(|alignment|); this view answers the only lookups explanation
    generation performs (``targets_of`` / ``sources_of``) directly against
    the two underlying sets, reflecting their mutations immediately.
    """

    __slots__ = ("primary", "secondary")

    def __init__(self, primary: AlignmentSet, secondary: AlignmentSet) -> None:
        self.primary = primary
        self.secondary = secondary

    @property
    def version(self) -> tuple[int, int]:
        """Combined mutation counter of the two underlying sets."""
        return (self.primary.version, self.secondary.version)

    def targets_of(self, source: str) -> set[str]:
        return self.primary.targets_of(source) | self.secondary.targets_of(source)

    def targets_view(self, source: str) -> set[str] | frozenset[str]:
        """Copy-free union lookup — do not mutate; copies only when both sides hit."""
        primary = self.primary.targets_view(source)
        secondary = self.secondary.targets_view(source)
        if not secondary:
            return primary
        if not primary:
            return secondary
        return primary | secondary

    def sources_of(self, target: str) -> set[str]:
        return self.primary.sources_of(target) | self.secondary.sources_of(target)

    def __contains__(self, pair: EntityPair) -> bool:
        return pair in self.primary or pair in self.secondary


def mapping_to_alignment(mapping: Mapping[str, str]) -> AlignmentSet:
    """Build an :class:`AlignmentSet` from a source->target dictionary."""
    return AlignmentSet(mapping.items())
