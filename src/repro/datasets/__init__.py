"""Benchmark dataset substrate: synthetic DBP15K/OpenEA analogues and noise."""

from .noise import (
    PAPER_SEED_NOISE_FRACTION,
    add_spurious_triples,
    corrupt_seed_alignment,
    drop_random_triples,
)
from .registry import (
    DATASET_NAMES,
    available_benchmarks,
    benchmark_config,
    load_all_benchmarks,
    load_benchmark,
)
from .synthetic import (
    DEFAULT_RELATIONS,
    RelationSpec,
    SyntheticBenchmarkGenerator,
    SyntheticConfig,
    generate_dataset,
)
from .workload import ReplayRequest, replay_workload, shard_workload

__all__ = [
    "DATASET_NAMES",
    "DEFAULT_RELATIONS",
    "PAPER_SEED_NOISE_FRACTION",
    "RelationSpec",
    "ReplayRequest",
    "SyntheticBenchmarkGenerator",
    "SyntheticConfig",
    "add_spurious_triples",
    "available_benchmarks",
    "benchmark_config",
    "corrupt_seed_alignment",
    "drop_random_triples",
    "generate_dataset",
    "load_all_benchmarks",
    "load_benchmark",
    "replay_workload",
    "shard_workload",
]
