"""Scripted service traffic: deterministic skewed request replays.

Serving benchmarks need reproducible traffic whose *shape* matches real
query streams: a small set of hot pairs absorbs most requests (which is
what makes result caching pay off) while the long tail keeps the engine
honest.  :func:`replay_workload` generates such a stream from a pair
population with a Zipf-like rank weighting, seeded so every run — CLI,
benchmark, tests — sees the same request order.
"""

from __future__ import annotations

import random
from typing import Sequence

#: One scripted request: (operation kind, source entity, target entity).
ReplayRequest = tuple[str, str, str]


def replay_workload(
    pairs: Sequence[tuple[str, str]],
    num_requests: int,
    seed: int = 0,
    skew: float = 1.0,
    kinds: Sequence[str] = ("explain",),
    kind_weights: Sequence[float] | None = None,
) -> list[ReplayRequest]:
    """Build a deterministic skewed request stream over *pairs*.

    Args:
        pairs: the pair population (rank order defines popularity: the
            first pair is the hottest).
        num_requests: length of the replay.
        seed: RNG seed; same inputs -> same replay.
        skew: Zipf exponent of the rank weighting ``1 / rank^skew``.
            ``0`` gives uniform traffic, larger values concentrate it.
        kinds: operation kinds to mix into the stream.
        kind_weights: relative weight per kind (uniform when omitted).

    Returns:
        ``num_requests`` tuples of ``(kind, source, target)``.
    """
    if not pairs:
        return []
    if num_requests < 0:
        raise ValueError("num_requests must be >= 0")
    if kind_weights is not None and len(kind_weights) != len(kinds):
        raise ValueError("kind_weights must match kinds in length")
    rng = random.Random(seed)
    pair_weights = [1.0 / (rank + 1) ** skew for rank in range(len(pairs))]
    chosen_pairs = rng.choices(list(pairs), weights=pair_weights, k=num_requests)
    chosen_kinds = rng.choices(list(kinds), weights=kind_weights, k=num_requests)
    return [
        (kind, source, target)
        for kind, (source, target) in zip(chosen_kinds, chosen_pairs)
    ]


def shard_workload(workload: Sequence[ReplayRequest], num_shards: int) -> list[list[ReplayRequest]]:
    """Round-robin split of a replay across *num_shards* concurrent clients.

    Interleaving (rather than chunking) keeps the hot-pair mixture similar
    across shards, which is how concurrent clients would actually see it.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    shards: list[list[ReplayRequest]] = [[] for _ in range(num_shards)]
    for position, request in enumerate(workload):
        shards[position % num_shards].append(request)
    return shards
