"""Named benchmark configurations standing in for DBP15K and OpenEA.

The five datasets of the paper differ along three structural axes that the
experiments exploit:

* **Density** — FR-EN has noticeably more triples than ZH-EN / JA-EN, which
  the paper credits for the larger repair gains of AlignE / Dual-AMN there.
* **Schema heterogeneity** — DBP-WD-V1 and DBP-YAGO-V1 pair KGs with
  different schemata; relation surface forms barely overlap.
* **Difficulty of the seed split** — JA-EN is reported as the hardest
  cross-lingual set; we model that with a lower triple-keep probability
  (the two views share less structure).

The registry maps the paper's dataset names to synthetic configurations
reproducing those axes at CPU-friendly scale.  Sizes can be scaled with the
``scale`` argument (1.0 ≈ 400 world entities) when more fidelity is wanted.
"""

from __future__ import annotations

from dataclasses import replace

from ..kg import EADataset
from .synthetic import SyntheticConfig, generate_dataset

_BASE_CONFIGS: dict[str, SyntheticConfig] = {
    "ZH-EN": SyntheticConfig(
        name="ZH-EN",
        num_entities=400,
        avg_degree=4.5,
        relation_overlap=1.0,
        triple_keep_prob=0.85,
        sibling_fraction=0.12,
        prefix1="zh",
        prefix2="en",
        seed=11,
    ),
    "JA-EN": SyntheticConfig(
        name="JA-EN",
        num_entities=400,
        avg_degree=4.0,
        relation_overlap=1.0,
        triple_keep_prob=0.75,
        sibling_fraction=0.15,
        prefix1="ja",
        prefix2="en",
        seed=23,
    ),
    "FR-EN": SyntheticConfig(
        name="FR-EN",
        num_entities=400,
        avg_degree=6.5,
        relation_overlap=1.0,
        triple_keep_prob=0.88,
        sibling_fraction=0.12,
        prefix1="fr",
        prefix2="en",
        seed=37,
    ),
    "DBP-WD": SyntheticConfig(
        name="DBP-WD",
        num_entities=400,
        avg_degree=5.0,
        relation_overlap=0.3,
        triple_keep_prob=0.85,
        sibling_fraction=0.10,
        prefix1="dbp",
        prefix2="wd",
        seed=53,
    ),
    "DBP-YAGO": SyntheticConfig(
        name="DBP-YAGO",
        num_entities=400,
        avg_degree=5.0,
        relation_overlap=0.4,
        triple_keep_prob=0.9,
        sibling_fraction=0.08,
        prefix1="dbp",
        prefix2="yago",
        seed=71,
    ),
}

#: Dataset names in the order the paper's tables report them.
DATASET_NAMES: tuple[str, ...] = tuple(_BASE_CONFIGS)

#: Aliases accepted by :func:`load_benchmark`.
_ALIASES = {
    "zh_en": "ZH-EN",
    "ja_en": "JA-EN",
    "fr_en": "FR-EN",
    "dbp_wd": "DBP-WD",
    "dbp-wd-v1": "DBP-WD",
    "dbp_yago": "DBP-YAGO",
    "dbp-yago-v1": "DBP-YAGO",
}


def available_benchmarks() -> tuple[str, ...]:
    """Names of all registered benchmark datasets."""
    return DATASET_NAMES


def benchmark_config(name: str, scale: float = 1.0) -> SyntheticConfig:
    """Return the synthetic configuration registered under *name*.

    Args:
        name: dataset name (case-insensitive; ``zh_en``-style aliases accepted).
        scale: multiplier on the number of world entities.

    Raises:
        KeyError: if the name is not registered.
    """
    canonical = _ALIASES.get(name.lower(), name.upper())
    if canonical not in _BASE_CONFIGS:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {', '.join(DATASET_NAMES)}"
        )
    config = _BASE_CONFIGS[canonical]
    if scale != 1.0:
        config = replace(config, num_entities=max(20, int(config.num_entities * scale)))
    return config


def load_benchmark(name: str, scale: float = 1.0) -> EADataset:
    """Generate the synthetic benchmark registered under *name*."""
    return generate_dataset(benchmark_config(name, scale=scale))


def load_all_benchmarks(scale: float = 1.0) -> dict[str, EADataset]:
    """Generate every registered benchmark, keyed by name."""
    return {name: load_benchmark(name, scale=scale) for name in DATASET_NAMES}
