"""Noise injection utilities for the robustness experiments (Section V-E).

The paper adds noise to the seed alignment (750 of 4,500 pairs randomly
disrupted) and reports explanation and repair quality under that noise.
Besides seed noise, this module also provides KG triple noise (random
spurious triples), which is useful for stress-testing the explanation
generator even though the paper only perturbs the seed set.
"""

from __future__ import annotations

import random

from ..kg import EADataset, KnowledgeGraph, Triple


#: Fraction of the seed alignment the paper corrupts (750 / 4500).
PAPER_SEED_NOISE_FRACTION = 750 / 4500


def corrupt_seed_alignment(
    dataset: EADataset, fraction: float = PAPER_SEED_NOISE_FRACTION, seed: int = 0
) -> EADataset:
    """Return a copy of *dataset* with a fraction of seed pairs disrupted.

    This is the exact protocol of Section V-E scaled to the dataset size:
    the selected pairs have their target entities shuffled among themselves,
    so the seed set keeps its size but contains wrong links.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    num_corrupted = int(round(len(dataset.train_alignment) * fraction))
    return dataset.with_noisy_seed(num_corrupted, seed=seed)


def add_spurious_triples(
    kg: KnowledgeGraph, fraction: float = 0.05, seed: int = 0
) -> KnowledgeGraph:
    """Return a copy of *kg* with random spurious triples added.

    Each spurious triple connects two random existing entities with an
    existing relation; *fraction* is relative to the current triple count.
    """
    if fraction < 0:
        raise ValueError("fraction must be non-negative")
    rng = random.Random(seed)
    entities = sorted(kg.entities)
    relations = sorted(kg.relations)
    noisy = kg.copy()
    if len(entities) < 2 or not relations:
        return noisy
    num_new = int(round(kg.num_triples() * fraction))
    added = 0
    attempts = 0
    while added < num_new and attempts < num_new * 20:
        attempts += 1
        head, tail = rng.sample(entities, 2)
        relation = rng.choice(relations)
        triple = Triple(head, relation, tail)
        if triple in noisy:
            continue
        noisy.add_triple(triple)
        added += 1
    return noisy


def drop_random_triples(
    kg: KnowledgeGraph, fraction: float = 0.05, seed: int = 0
) -> KnowledgeGraph:
    """Return a copy of *kg* with a random fraction of triples removed."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    rng = random.Random(seed)
    triples = sorted(kg.triples, key=lambda t: t.as_tuple())
    num_removed = int(round(len(triples) * fraction))
    removed = rng.sample(triples, num_removed) if num_removed else []
    return kg.without_triples(removed)
