"""Synthetic cross-lingual / heterogeneous EA benchmark generator.

The paper evaluates on DBP15K (ZH-EN, JA-EN, FR-EN) and OpenEA
(DBP-WD-V1, DBP-YAGO-V1).  Those dumps cannot be downloaded offline, so
this module builds structurally analogous dataset pairs:

1.  A seeded *world graph* is generated: a scale-free entity graph whose
    edges are labelled with relations of varying functionality (some
    nearly-functional relations like ``birth_place``, some many-to-many
    relations like ``genre``).
2.  Two *views* of the world are extracted.  Each view keeps a configurable
    fraction of the world triples (independently sampled, so the two KGs
    share structure but are not identical), renames entities with a
    per-view prefix (standing in for the two languages / two sources), and
    renames relations according to a *relation overlap* knob: overlapping
    relations keep a shared surface form, the rest get view-specific names
    (standing in for schema heterogeneity in DBP-WD / DBP-YAGO).
3.  The gold alignment is the identity mapping between the two views of
    every shared entity; it is split into seed (train) and test portions.

All ExEA algorithms consume only this structure (triples, functionality,
alignment), so the generator preserves exactly the properties that drive
the paper's experiments: density, heterogeneity, and the presence of
similar confusable entities (generated as "sibling" entities sharing most
of their neighbourhood, which is what makes one-to-many conflicts appear).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..kg import AlignmentSet, EADataset, KnowledgeGraph, Triple, split_alignment


@dataclass(frozen=True)
class RelationSpec:
    """Description of one world relation.

    Attributes:
        name: base relation name in the world graph.
        functionality: approximate fraction of subjects with a unique object
            (1.0 = functional relation).  Controls how many triples each
            subject emits with this relation.
        weight: relative sampling weight when attaching triples.
    """

    name: str
    functionality: float = 1.0
    weight: float = 1.0


DEFAULT_RELATIONS: tuple[RelationSpec, ...] = (
    RelationSpec("birth_place", functionality=0.95, weight=1.0),
    RelationSpec("located_in", functionality=0.9, weight=1.5),
    RelationSpec("capital_of", functionality=0.98, weight=0.5),
    RelationSpec("successor", functionality=0.92, weight=0.8),
    RelationSpec("predecessor", functionality=0.92, weight=0.8),
    RelationSpec("spouse", functionality=0.97, weight=0.5),
    RelationSpec("leader", functionality=0.7, weight=0.8),
    RelationSpec("member_of", functionality=0.4, weight=1.2),
    RelationSpec("genre", functionality=0.3, weight=1.0),
    RelationSpec("part_of", functionality=0.6, weight=1.0),
    RelationSpec("affiliation", functionality=0.5, weight=0.9),
    RelationSpec("works_at", functionality=0.8, weight=0.7),
)


@dataclass
class SyntheticConfig:
    """Configuration of one synthetic EA benchmark.

    Attributes:
        name: dataset name (e.g. ``"ZH-EN"``).
        num_entities: number of entities in the world graph.
        avg_degree: average number of world triples per entity.
        relation_overlap: fraction of relations whose surface name is shared
            between the two KGs (1.0 = same schema, lower values model the
            heterogeneous OpenEA datasets).
        triple_keep_prob: probability that a world triple is kept in each
            view; lower values make the two KGs less similar.
        sibling_fraction: fraction of entities that get a structurally
            similar "sibling" entity (source of one-to-many confusion).
        prefix1 / prefix2: entity-name prefixes of the two views.
        train_ratio: seed alignment fraction.
        seed: RNG seed; every dataset is fully deterministic given the config.
        relations: relation inventory of the world graph.
    """

    name: str = "SYN"
    num_entities: int = 400
    avg_degree: float = 4.0
    relation_overlap: float = 1.0
    triple_keep_prob: float = 0.85
    sibling_fraction: float = 0.12
    prefix1: str = "a"
    prefix2: str = "b"
    train_ratio: float = 0.3
    seed: int = 0
    relations: tuple[RelationSpec, ...] = field(default=DEFAULT_RELATIONS)


_SYLLABLES = (
    "ba", "den", "kor", "mal", "tir", "vos", "lun", "pra", "shi", "gor",
    "nel", "fay", "rud", "zan", "mi", "tol", "ker", "sab", "vin", "ula",
)


def _pseudoword(index: int) -> str:
    """Deterministic pronounceable entity name for a world-entity index.

    Realistic-looking names matter for the LLM-comparison experiments: the
    simulated ChatGPT reasons over surface names (with number blindness),
    so entities need names a name-based judge could plausibly work with.
    """
    parts = []
    remaining = index
    for _ in range(3):
        parts.append(_SYLLABLES[remaining % len(_SYLLABLES)])
        remaining //= len(_SYLLABLES)
    return "".join(parts) + f"_{index:04d}"


class SyntheticBenchmarkGenerator:
    """Generates :class:`~repro.kg.EADataset` instances from a :class:`SyntheticConfig`."""

    def __init__(self, config: SyntheticConfig) -> None:
        self.config = config

    # ------------------------------------------------------------------
    # World graph
    # ------------------------------------------------------------------
    def _world_entities(self) -> list[str]:
        return [_pseudoword(i) for i in range(self.config.num_entities)]

    def _build_world(self, rng: random.Random) -> list[tuple[str, str, str]]:
        """Build the world triple list with preferential attachment on objects."""
        config = self.config
        entities = self._world_entities()
        target_triples = int(config.num_entities * config.avg_degree / 2)
        relations = list(config.relations)
        relation_weights = [spec.weight for spec in relations]

        # Preferential attachment: popular objects accumulate more links,
        # which creates hub entities similar to countries / genres in DBpedia.
        object_pool: list[str] = list(entities)
        triples: set[tuple[str, str, str]] = set()
        attempts = 0
        while len(triples) < target_triples and attempts < target_triples * 20:
            attempts += 1
            head = rng.choice(entities)
            spec = rng.choices(relations, weights=relation_weights, k=1)[0]
            # Functional relations reuse an existing object for this head only
            # rarely; non-functional relations may emit several objects.
            tail = rng.choice(object_pool)
            if tail == head:
                continue
            if rng.random() > spec.functionality:
                # Low-functionality relation: bias the tail towards hubs.
                tail = rng.choice(object_pool)
                if tail == head:
                    continue
            triple = (head, spec.name, tail)
            if triple in triples:
                continue
            triples.add(triple)
            object_pool.append(tail)
        return sorted(triples)

    def _add_siblings(
        self,
        world: list[tuple[str, str, str]],
        rng: random.Random,
    ) -> tuple[list[tuple[str, str, str]], list[str]]:
        """Create sibling entities that copy most of an existing entity's triples.

        Siblings are what make EA hard: they are nearly indistinguishable by
        structure, so base models confuse them and produce one-to-many
        conflicts, which the repair module then has to resolve — the same
        phenomenon as the GPU-series example in Fig. 5 of the paper.
        """
        config = self.config
        entities = sorted({h for h, _, _ in world} | {t for _, _, t in world})
        num_siblings = int(len(entities) * config.sibling_fraction)
        chosen = rng.sample(entities, min(num_siblings, len(entities)))
        new_triples = list(world)
        siblings: list[str] = []
        by_entity: dict[str, list[tuple[str, str, str]]] = {}
        for head, relation, tail in world:
            by_entity.setdefault(head, []).append((head, relation, tail))
            by_entity.setdefault(tail, []).append((head, relation, tail))
        for original in chosen:
            # The sibling's name differs from the original's only by a digit
            # (like product generations), which is exactly the confusion the
            # paper's case study and LLM experiments revolve around.
            sibling = f"{original}2"
            siblings.append(sibling)
            for head, relation, tail in by_entity.get(original, []):
                if rng.random() > 0.8:
                    continue
                if head == original:
                    new_triples.append((sibling, relation, tail))
                else:
                    new_triples.append((head, relation, sibling))
            # A distinguishing triple so the sibling is not a perfect clone;
            # successor/predecessor links chain siblings to their originals
            # like product generations.
            new_triples.append((sibling, "successor", original))
        return sorted(set(new_triples)), siblings

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def _relation_names(self, rng: random.Random) -> tuple[dict[str, str], dict[str, str]]:
        """Per-view relation surface names controlled by ``relation_overlap``."""
        config = self.config
        base_relations = sorted({spec.name for spec in config.relations} | {"successor"})
        overlap_count = int(round(len(base_relations) * config.relation_overlap))
        shared = set(rng.sample(base_relations, overlap_count))
        names1: dict[str, str] = {}
        names2: dict[str, str] = {}
        for relation in base_relations:
            if relation in shared:
                names1[relation] = relation
                names2[relation] = relation
            else:
                names1[relation] = f"{config.prefix1}_{relation}"
                names2[relation] = f"{config.prefix2}_{relation}"
        return names1, names2

    def _make_view(
        self,
        world: list[tuple[str, str, str]],
        prefix: str,
        relation_names: dict[str, str],
        rng: random.Random,
    ) -> KnowledgeGraph:
        config = self.config
        triples: list[Triple] = []
        for head, relation, tail in world:
            if rng.random() > config.triple_keep_prob:
                continue
            triples.append(
                Triple(f"{prefix}:{head}", relation_names[relation], f"{prefix}:{tail}")
            )
        return KnowledgeGraph(triples, name=prefix)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def generate(self) -> EADataset:
        """Generate the dataset described by the configuration."""
        config = self.config
        rng = random.Random(config.seed)
        world = self._build_world(rng)
        world, _ = self._add_siblings(world, rng)
        names1, names2 = self._relation_names(rng)
        kg1 = self._make_view(world, config.prefix1, names1, rng)
        kg2 = self._make_view(world, config.prefix2, names2, rng)

        world_entities = sorted({h for h, _, _ in world} | {t for _, _, t in world})
        gold = AlignmentSet(
            (f"{config.prefix1}:{e}", f"{config.prefix2}:{e}")
            for e in world_entities
            if f"{config.prefix1}:{e}" in kg1.entities and f"{config.prefix2}:{e}" in kg2.entities
        )
        train, test = split_alignment(gold, train_ratio=config.train_ratio, seed=config.seed)
        dataset = EADataset(
            kg1=kg1,
            kg2=kg2,
            train_alignment=train,
            test_alignment=test,
            name=config.name,
            metadata={
                "generator": "SyntheticBenchmarkGenerator",
                "config": config,
            },
        )
        dataset.validate()
        return dataset


def generate_dataset(config: SyntheticConfig) -> EADataset:
    """Convenience wrapper: generate a dataset from *config*."""
    return SyntheticBenchmarkGenerator(config).generate()
