"""Vectorized batch explanation engine with shared embedding & neighborhood caches.

The seed implementation explained every EA pair independently: each call
re-derived neighbourhoods with set-based BFS, re-enumerated relation
paths, embedded them one vector at a time through string-keyed dict
lookups, and normalised a fresh little similarity matrix per pair.  The
:class:`ExplanationEngine` below turns that hot path into an
integer-indexed, NumPy-vectorized pipeline shared across pairs:

1. neighbourhoods come from the KG-level memoized integer BFS
   (:meth:`repro.kg.KnowledgeGraph.entities_within_hops`);
2. relation paths come from one memoized grouped walk per central entity
   (:meth:`repro.kg.KGIndex.walks_from`) — the DFS ball around an entity
   is explored once no matter how many of its neighbours are queried —
   and are cached per ``(entity, neighbour)`` endpoint pair together with
   their integer entity/relation ids;
3. the embeddings of *all* new paths in a batch are computed in one shot —
   the precomputed ids are gathered into arrays grouped by path length,
   summed with fancy indexing (Eq. 2), stacked into a single matrix, and
   L2-normalised once;
4. each pair's bidirectional (mutual nearest neighbour) matching is a
   small dot product of pre-normalised rows — no per-pair re-embedding or
   re-normalisation.

``explain()`` is the batch-of-one case of ``explain_batch()``, so single
and batched calls produce identical explanations.

Cache-invalidation contract
---------------------------

* Everything the engine caches (endpoint path lists, embedding rows, id
  maps, sorted neighbourhoods) is guarded by the two graphs'
  :attr:`~repro.kg.KnowledgeGraph.version` counters and the model's
  :attr:`~repro.models.EAModel.embedding_version`.  A model refit drops
  the derived state wholesale; a KG mutation is reconciled *scoped* when
  the graph's bounded mutation log covers the span: only endpoint caches
  whose central entity falls inside the mutation's ``max_hops`` blast
  radius are evicted, everything else (including the embedding rows of
  surviving path blocks) stays live across the generation.  When the log
  cannot cover the span the engine falls back to the wholesale drop (the
  fidelity protocol removes triples mid-experiment, so both paths are
  exercised in practice).
* KG-level structural memos (adjacency index, hop sets, walk cache) live
  on :class:`repro.kg.KnowledgeGraph` / :class:`repro.kg.KGIndex` and are
  invalidated by the graph itself on mutation.
* The engine never mutates the alignment it is given; alignment-dependent
  state (the matched-neighbour lists) is recomputed per call, which is
  cheap once neighbourhoods and the reverse alignment index are O(1)
  lookups.
"""

from __future__ import annotations

import numpy as np

from ..embedding import mutual_nearest_pairs
from ..kg import EADataset
from ..models import EAModel
from .explanation.paths import RelationPath
from .explanation.subgraph import Explanation, MatchedPath

_EPS = 1e-12

#: Batch size from which per-pair mutual-NN matmuls are fused into blocked
#: gemms (one 3-D batched matmul per block shape).  Below this the plain
#: per-pair dot products win — no stacking overhead.
_FUSE_MIN_PLANS = 4

#: Scoped invalidation leaves dead rows behind in the embedding store
#: (their endpoint blocks were evicted).  Once the dead fraction crosses
#: this bound the store is rebuilt wholesale to reclaim memory.
_STORE_DEAD_ROW_FACTOR = 4
_STORE_DEAD_ROW_MIN = 4096

#: Anything answering ``targets_of(source) -> set[str]`` — a full
#: :class:`repro.kg.AlignmentSet` or a live :class:`repro.kg.AlignmentUnionView`.
AlignmentLike = object


class PathEmbeddingStore:
    """One growing matrix of unit-normalised path embeddings (Eq. 2).

    The engine appends the embeddings of new endpoint blocks (all paths of
    one ``(central, neighbour)`` pair) in vectorised batches and addresses
    them by row range afterwards — no per-path bookkeeping is needed
    because a path's ``source``/``target`` fields tie it to exactly one
    endpoint pair.  Rows are normalised exactly like
    :func:`repro.embedding.cosine_matrix` normalises its inputs, so
    gathered-row dot products reproduce its output bit-for-bit.  The
    owning engine resets the store whenever the model's matrices or either
    graph change version.
    """

    def __init__(self, model: EAModel) -> None:
        self.model = model
        self._unit: np.ndarray | None = None
        self._size = 0

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of appended rows (including rows no longer referenced)."""
        return self._size

    def reset(self) -> None:
        """Drop every stored row (model refit or graph mutation)."""
        self._unit = None
        self._size = 0

    def unit_rows(self, row_ids: np.ndarray) -> np.ndarray:
        """Gather unit-normalised embedding rows by id."""
        assert self._unit is not None
        return self._unit[row_ids]

    def append(self, id_pairs: list[tuple[tuple[int, ...], tuple[int, ...]]]) -> int:
        """Embed *id_pairs* in one vectorised batch; returns the base row id.

        Each item is ``(entity_ids, relation_ids)`` already mapped into the
        model's index (the engine precomputes them during path
        enumeration), so embedding needs no string lookups.  Rows
        ``base .. base + len(id_pairs) - 1`` follow input order.
        """
        raw = self._embed(id_pairs)
        norms = np.maximum(np.linalg.norm(raw, axis=1, keepdims=True), _EPS)
        unit = raw / norms
        base = self._size
        # Amortised append: double the backing capacity instead of
        # re-concatenating the whole matrix on every small batch.
        needed = base + len(id_pairs)
        if self._unit is None:
            capacity = max(needed, 256)
            self._unit = np.zeros((capacity, unit.shape[1]))
        elif needed > self._unit.shape[0]:
            capacity = max(needed, 2 * self._unit.shape[0])
            grown = np.zeros((capacity, self._unit.shape[1]))
            grown[:base] = self._unit[:base]
            self._unit = grown
        self._unit[base:needed] = unit
        self._size = needed
        return base

    # ------------------------------------------------------------------
    def _embed(
        self, id_pairs: list[tuple[tuple[int, ...], tuple[int, ...]]]
    ) -> np.ndarray:
        """Eq. 2 for a batch of paths, grouped by length for fancy indexing.

        The entity part averages the source and intermediate entities (the
        final neighbour is excluded), the relation part averages the
        relation embeddings; the two halves are concatenated — exactly
        :func:`repro.core.explanation.paths.path_embedding`, many rows at
        a time over precomputed id tuples.
        """
        model = self.model
        assert model.entity_matrix is not None
        entity_matrix = model.entity_matrix
        relation_matrix = model.relation_embedding_matrix()
        dim = entity_matrix.shape[1]
        out = np.zeros((len(id_pairs), 2 * dim))
        by_length: dict[int, list[int]] = {}
        for position, (_, relation_ids) in enumerate(id_pairs):
            by_length.setdefault(len(relation_ids), []).append(position)
        for length, positions in by_length.items():
            entity_ids = np.array([id_pairs[i][0] for i in positions], dtype=np.int64)
            relation_ids = np.array([id_pairs[i][1] for i in positions], dtype=np.int64)
            entity_part = entity_matrix[entity_ids].sum(axis=1) / length
            relation_part = relation_matrix[relation_ids].sum(axis=1) / length
            out[positions] = np.concatenate([entity_part, relation_part], axis=1)
        return out


class ExplanationEngine:
    """Batch explanation kernels + caches shared by generator and repairer."""

    def __init__(self, model: EAModel, dataset: EADataset, config) -> None:
        self.model = model
        self.dataset = dataset
        self.config = config
        self.store = PathEmbeddingStore(model)
        #: endpoint key -> (RelationPath tuple, (entity_ids, relation_ids) tuple)
        self._path_lists: dict[
            tuple[int, str, str],
            tuple[tuple[RelationPath, ...], tuple[tuple[tuple[int, ...], tuple[int, ...]], ...]],
        ] = {}
        #: endpoint key -> embedding row ids in the store
        self._path_rows: dict[tuple[int, str, str], np.ndarray] = {}
        #: per-side lookup tables: kg-local entity/relation id -> model id
        self._id_maps: dict[int, tuple[list[int], list[int], bool]] = {}
        #: per-side table: kg-local triple id -> model relation id
        self._triple_relation_ids: dict[int, list[int]] = {}
        #: (side, entity) -> sorted neighbourhood tuple
        self._sorted_neighborhoods: dict[tuple[int, str], tuple[str, ...]] = {}
        self._kg_versions = (dataset.kg1.version, dataset.kg2.version)
        self._model_version = model.embedding_version
        self._dead_store_rows = 0

    # ------------------------------------------------------------------
    # Caches
    # ------------------------------------------------------------------
    def _check_versions(self) -> None:
        """Reconcile the engine caches with the current graph/model versions.

        A model refit always drops everything (embedding rows are gone).
        A KG mutation first tries the *scoped* path: if both graphs' bounded
        mutation logs still cover the span since the engine's last sync,
        only endpoint caches whose central entity lies inside the mutation
        blast radius (``KGIndex.blast_radius`` at ``max_hops``) are
        evicted — every cached path of an entity, and its sorted
        neighbourhood, can only have changed if some mutated edge lies
        within ``max_hops`` of it, i.e. if the entity is in the ball.
        Embedding rows of surviving blocks stay valid because the store is
        not reset.  The integer id maps are always rebuilt: entity/relation
        ids shift when the inventory grows.  If a log cannot cover the
        span, fall back to the pre-PR-8 wholesale drop.
        """
        versions = (self.dataset.kg1.version, self.dataset.kg2.version)
        if self.model.embedding_version != self._model_version:
            self._model_version = self.model.embedding_version
            self._reset_caches(versions)
            return
        if versions == self._kg_versions:
            return
        records1 = self.dataset.kg1.mutations_since(self._kg_versions[0])
        records2 = self.dataset.kg2.mutations_since(self._kg_versions[1])
        if records1 is None or records2 is None:
            self._reset_caches(versions)
            return
        for side, records, kg in ((1, records1, self.dataset.kg1), (2, records2, self.dataset.kg2)):
            if not records:
                continue
            affected = kg.blast_radius(records, self.config.max_hops)
            if not affected:
                continue
            for key in [k for k in self._sorted_neighborhoods if k[0] == side and k[1] in affected]:
                del self._sorted_neighborhoods[key]
            for key in [k for k in self._path_lists if k[0] == side and k[1] in affected]:
                del self._path_lists[key]
            for key in [k for k in self._path_rows if k[0] == side and k[1] in affected]:
                self._dead_store_rows += len(self._path_rows.pop(key))
        self._id_maps.clear()
        self._triple_relation_ids.clear()
        self._kg_versions = versions
        # Reclaim the store once evicted blocks dominate the live rows.
        live = self.store.size - self._dead_store_rows
        if self._dead_store_rows > max(
            _STORE_DEAD_ROW_MIN, _STORE_DEAD_ROW_FACTOR * max(live, 1)
        ):
            self._path_rows.clear()
            self.store.reset()
            self._dead_store_rows = 0

    def _reset_caches(self, versions: tuple[int, int]) -> None:
        """The wholesale invalidation path (model refit or uncovered span)."""
        self._path_lists.clear()
        self._path_rows.clear()
        self._id_maps.clear()
        self._triple_relation_ids.clear()
        self._sorted_neighborhoods.clear()
        self.store.reset()
        self._dead_store_rows = 0
        self._kg_versions = versions

    def _maps(self, side: int) -> tuple[list[int], list[int], bool]:
        """kg-local id -> model id lookup tables for KG *side* (1 or 2).

        Entities/relations absent from the model's index map to ``-1``;
        path construction rejects those with a KeyError exactly like the
        string-keyed lookups used to.  The third element is True when both
        tables are complete (no ``-1``), letting the hot path skip the
        guard entirely.
        """
        cached = self._id_maps.get(side)
        if cached is None:
            kg = self.dataset.kg1 if side == 1 else self.dataset.kg2
            kg_index = kg.index()
            model_index = self.model.index
            assert model_index is not None
            entity_map = [model_index.entity_to_id.get(e, -1) for e in kg_index.entities]
            relation_map = [model_index.relation_to_id.get(r, -1) for r in kg_index.relations]
            clean = -1 not in entity_map and -1 not in relation_map
            cached = (entity_map, relation_map, clean)
            self._id_maps[side] = cached
        return cached

    def _triple_relations(self, side: int) -> list[int]:
        """Per-triple model relation ids (kg triple id -> model relation id)."""
        cached = self._triple_relation_ids.get(side)
        if cached is None:
            kg = self.dataset.kg1 if side == 1 else self.dataset.kg2
            relation_map = self._maps(side)[1]
            cached = [relation_map[r] for r in kg.index().relation_ids.tolist()]
            self._triple_relation_ids[side] = cached
        return cached

    def neighborhood(self, side: int, entity: str) -> frozenset[str]:
        """Entities within ``max_hops`` of *entity* in KG ``side`` (1 or 2)."""
        kg = self.dataset.kg1 if side == 1 else self.dataset.kg2
        return kg.entities_within_hops(entity, self.config.max_hops)

    def _sorted_neighborhood(self, side: int, entity: str) -> tuple[str, ...]:
        key = (side, entity)
        cached = self._sorted_neighborhoods.get(key)
        if cached is None:
            cached = tuple(sorted(self.neighborhood(side, entity)))
            self._sorted_neighborhoods[key] = cached
        return cached

    def _endpoint_paths(
        self, side: int, source: str, neighbor: str
    ) -> tuple[tuple[RelationPath, ...], tuple[tuple[tuple[int, ...], tuple[int, ...]], ...]]:
        """Capped paths plus their model-id tuples, cached per endpoint pair."""
        key = (side, source, neighbor)
        cached = self._path_lists.get(key)
        if cached is None:
            kg = self.dataset.kg1 if side == 1 else self.dataset.kg2
            kg_index = kg.index()
            source_id = kg_index.entity_to_id.get(source)
            neighbor_id = kg_index.entity_to_id.get(neighbor)
            if source_id is None or neighbor_id is None:
                raw = []
            else:
                raw = kg_index.walks_from(source_id, self.config.max_hops).get(neighbor_id, [])
            raw = raw[: self.config.max_paths_per_neighbor]
            entity_map, _, clean = self._maps(side)
            triple_relation_map = self._triple_relations(side)
            triples_of_index = kg_index.triples
            paths: list[RelationPath] = []
            id_pairs: list[tuple[tuple[int, ...], tuple[int, ...]]] = []
            for triple_ids, node_ids in raw:
                path = RelationPath(
                    source=source,
                    target=neighbor,
                    triples=tuple(map(triples_of_index.__getitem__, triple_ids)),
                )
                entity_ids = tuple(map(entity_map.__getitem__, node_ids))
                relation_ids = tuple(map(triple_relation_map.__getitem__, triple_ids))
                if not clean and (
                    any(i < 0 for i in entity_ids) or any(i < 0 for i in relation_ids)
                ):
                    raise KeyError(
                        f"path {path} mentions an entity/relation unknown to the model index"
                    )
                paths.append(path)
                id_pairs.append((entity_ids, relation_ids))
            cached = (tuple(paths), tuple(id_pairs))
            self._path_lists[key] = cached
        return cached

    # ------------------------------------------------------------------
    # Neighbour matching
    # ------------------------------------------------------------------
    def matched_neighbors(
        self, source: str, target: str, alignment: AlignmentLike
    ) -> list[tuple[str, str]]:
        """Neighbour pairs of (source, target) aligned by *alignment*.

        Sorted on both sides for determinism; the central pair itself is
        never returned.
        """
        self._check_versions()
        neighbors1 = self._sorted_neighborhood(1, source)
        neighbors2 = self.neighborhood(2, target)
        # Copy-free lookup when the alignment provides one (AlignmentSet and
        # AlignmentUnionView both do); one lookup runs per neighbour per pair.
        lookup = getattr(alignment, "targets_view", None) or alignment.targets_of
        matched: list[tuple[str, str]] = []
        for neighbor1 in neighbors1:
            candidates = lookup(neighbor1)
            if not candidates:
                continue
            for neighbor2 in sorted(candidates):
                if neighbor2 in neighbors2 and (neighbor1, neighbor2) != (source, target):
                    matched.append((neighbor1, neighbor2))
        return matched

    # ------------------------------------------------------------------
    # Batch explanation
    # ------------------------------------------------------------------
    def explain_batch(
        self,
        pairs: list[tuple[str, str]],
        alignment: AlignmentLike,
        neighbor_pairs_by_pair: dict[tuple[str, str], list[tuple[str, str]]] | None = None,
    ) -> dict[tuple[str, str], Explanation]:
        """Explanations for *pairs* under one shared *alignment*.

        Args:
            pairs: EA pairs to explain (duplicates are collapsed).
            alignment: the reference alignment for neighbour matching.
            neighbor_pairs_by_pair: optional precomputed matched-neighbour
                lists (the repair confidence oracle computes them anyway
                for its cache key and passes them here to avoid repeating
                the work).
        """
        self._check_versions()
        config = self.config
        kg1, kg2 = self.dataset.kg1, self.dataset.kg2
        path_rows = self._path_rows

        results: dict[tuple[str, str], Explanation] = {}
        plans: list[tuple[Explanation, set[tuple[str, str]], list, list, list, list]] = []
        #: endpoint blocks awaiting embedding, in discovery order
        new_blocks: list[tuple[tuple[int, str, str], int]] = []
        new_id_pairs: list[tuple[tuple[int, ...], tuple[int, ...]]] = []
        scheduled: set[tuple[int, str, str]] = set()

        for source, target in dict.fromkeys(pairs):
            explanation = Explanation(
                source=source,
                target=target,
                candidate_triples1=kg1.triples_within_hops(source, config.max_hops),
                candidate_triples2=kg2.triples_within_hops(target, config.max_hops),
            )
            results[(source, target)] = explanation
            if neighbor_pairs_by_pair is not None and (source, target) in neighbor_pairs_by_pair:
                neighbor_pairs = neighbor_pairs_by_pair[(source, target)]
            else:
                neighbor_pairs = self.matched_neighbors(source, target, alignment)
            if not neighbor_pairs:
                continue
            paths1: list[RelationPath] = []
            paths2: list[RelationPath] = []
            keys1: list[tuple[int, str, str]] = []
            keys2: list[tuple[int, str, str]] = []
            for neighbor1, neighbor2 in neighbor_pairs:
                key1 = (1, source, neighbor1)
                found1, ids1 = self._endpoint_paths(1, source, neighbor1)
                if found1:
                    paths1.extend(found1)
                    keys1.append(key1)
                    if key1 not in path_rows and key1 not in scheduled:
                        scheduled.add(key1)
                        new_blocks.append((key1, len(ids1)))
                        new_id_pairs.extend(ids1)
                key2 = (2, target, neighbor2)
                found2, ids2 = self._endpoint_paths(2, target, neighbor2)
                if found2:
                    paths2.extend(found2)
                    keys2.append(key2)
                    if key2 not in path_rows and key2 not in scheduled:
                        scheduled.add(key2)
                        new_blocks.append((key2, len(ids2)))
                        new_id_pairs.extend(ids2)
            if not paths1 or not paths2:
                continue
            plans.append((explanation, set(neighbor_pairs), paths1, paths2, keys1, keys2))

        if not plans and not new_id_pairs:
            return results

        # One shot: embed + normalise every new path in the batch, then pin
        # the row range of every new endpoint block (reused across pairs in
        # this batch and across future calls).
        if new_id_pairs:
            base = self.store.append(new_id_pairs)
            offset = base
            for key, count in new_blocks:
                path_rows[key] = np.arange(offset, offset + count, dtype=np.int64)
                offset += count

        # Per pair: a small dot product of pre-normalised rows and the
        # mutual-nearest-neighbour pass of the paper's Section III-A.
        similarities = self._plan_similarities(plans)
        for (explanation, neighbor_pair_set, paths1, paths2, keys1, keys2), similarity in zip(
            plans, similarities
        ):
            for i, j in mutual_nearest_pairs(similarity):
                path1, path2 = paths1[i], paths2[j]
                # Only keep matches that actually connect a matched
                # neighbour pair: a pair of mutually-nearest paths leading
                # to unrelated neighbours is not semantic evidence.
                if (path1.target, path2.target) not in neighbor_pair_set:
                    continue
                score = float(similarity[i, j])
                if score < config.min_path_similarity:
                    continue
                explanation.matched_paths.append(MatchedPath(path1, path2, score))
            explanation.matched_paths.sort(key=lambda m: -m.similarity)
        return results

    def _plan_similarities(self, plans: list) -> list[np.ndarray]:
        """One similarity matrix per plan, fused into blocked gemms at scale.

        Small batches run the straightforward per-pair ``unit1 @ unit2.T``.
        Larger batches group the plans by block shape ``(n1, n2)`` — path
        counts are capped per neighbour, so shapes repeat heavily — and
        compute each group with a single 3-D batched matmul over stacked
        row gathers.  NumPy dispatches the identical gemm per slice of a
        stacked operand, so each fused block is bit-identical to its
        per-pair matmul (asserted in ``tests/core/test_engine.py``).
        """
        path_rows = self._path_rows
        row_sets: list[tuple[np.ndarray, np.ndarray]] = []
        for _, _, _, _, keys1, keys2 in plans:
            rows1 = np.concatenate([path_rows[key] for key in keys1])
            rows2 = np.concatenate([path_rows[key] for key in keys2])
            row_sets.append((rows1, rows2))
        out: list[np.ndarray | None] = [None] * len(plans)
        if len(plans) < _FUSE_MIN_PLANS:
            for position, (rows1, rows2) in enumerate(row_sets):
                out[position] = self.store.unit_rows(rows1) @ self.store.unit_rows(rows2).T
            return out
        groups: dict[tuple[int, int], list[int]] = {}
        for position, (rows1, rows2) in enumerate(row_sets):
            groups.setdefault((len(rows1), len(rows2)), []).append(position)
        for members in groups.values():
            if len(members) == 1:
                position = members[0]
                rows1, rows2 = row_sets[position]
                out[position] = self.store.unit_rows(rows1) @ self.store.unit_rows(rows2).T
                continue
            stack1 = self.store.unit_rows(np.stack([row_sets[i][0] for i in members]))
            stack2 = self.store.unit_rows(np.stack([row_sets[i][1] for i in members]))
            fused = np.matmul(stack1, stack2.transpose(0, 2, 1))
            for slot, position in enumerate(members):
                out[position] = fused[slot]
        return out
