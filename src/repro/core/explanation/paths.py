"""Relation paths and their embeddings (Eq. 2 of the paper).

A relation path ``p = (e1, r1, e1', r2, e2', ..., rn, en')`` connects a
central entity to one of its (matched) neighbours.  Its embedding is

.. math::

    \\mathbf{p} = \\frac{\\mathbf{e}_1 + \\sum_{i=1}^{n-1}\\mathbf{e}'_i}{n}
                 \\; \\oplus \\;
                 \\frac{\\sum_{i=1}^{n}\\mathbf{r}_i}{n}

i.e. the mean of the entity embeddings along the path *excluding* the final
neighbour, concatenated with the mean of the relation embeddings.  Relation
embeddings come from the model when it learns them, otherwise from the
translation average of Eq. 1 (handled by :meth:`EAModel.relation_embedding`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...kg import KnowledgeGraph, Triple
from ...models import EAModel


@dataclass(frozen=True)
class RelationPath:
    """A relation path from a central entity to a neighbour entity.

    Attributes:
        source: the central entity the path starts from.
        target: the neighbour entity the path ends at.
        triples: the triples along the path, in walk order (their direction
            may be either way; the walk ignores edge direction, as in the
            paper's Fig. 2 where ``predecessor`` points back to the centre).
    """

    source: str
    target: str
    triples: tuple[Triple, ...]

    def __hash__(self) -> int:
        # Paths are interned/deduplicated heavily on the explanation hot
        # path; cache the (immutable) hash after first use.
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.source, self.target, self.triples))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __len__(self) -> int:
        return len(self.triples)

    @property
    def length(self) -> int:
        """Number of hops in the path."""
        return len(self.triples)

    @property
    def is_direct(self) -> bool:
        """True if the path is a single triple (length one)."""
        return len(self.triples) == 1

    def entities(self) -> list[str]:
        """Entities along the path in walk order, starting at the source."""
        ordered = [self.source]
        for triple in self.triples:
            ordered.append(triple.other_entity(ordered[-1]))
        return ordered

    def relations(self) -> list[str]:
        """Relations along the path in walk order."""
        return [triple.relation for triple in self.triples]

    def starts_at_head(self) -> bool:
        """True if the central entity is the head of the first triple.

        This determines whether the ADG edge weight uses the relation's
        inverse functionality (central entity is the head, Eq. 3) or
        functionality (central entity is the tail, Eq. 4).
        """
        return self.triples[0].head == self.source


def enumerate_paths(
    kg: KnowledgeGraph, source: str, target: str, max_length: int = 2
) -> list[RelationPath]:
    """All simple relation paths from *source* to *target* up to *max_length* hops."""
    return [
        RelationPath(source=source, target=target, triples=path)
        for path in kg.relation_paths(source, target, max_length=max_length)
    ]


def path_embedding(path: RelationPath, model: EAModel) -> np.ndarray:
    """Embedding of a relation path following Eq. 2.

    The entity part averages the source entity and the intermediate
    entities (the final neighbour is excluded); the relation part averages
    the relation embeddings.  The two parts are concatenated.
    """
    entities = path.entities()
    relations = path.relations()
    n = len(relations)
    entity_part = np.sum([model.entity_embedding(e) for e in entities[:-1]], axis=0) / n
    relation_part = np.sum([model.relation_embedding(r) for r in relations], axis=0) / n
    return np.concatenate([entity_part, relation_part])


def path_embeddings(paths: list[RelationPath], model: EAModel) -> np.ndarray:
    """Stacked path embeddings, shape ``(len(paths), 2 * dim)``."""
    if not paths:
        return np.zeros((0, 2 * model.embedding_dim))
    return np.stack([path_embedding(path, model) for path in paths])
