"""Semantic matching subgraph generation (Section III-A).

Given an EA pair ``(e1, e2)`` predicted by a model, the generator

1. collects the candidate triples ``T_e1`` and ``T_e2`` within ``h`` hops,
2. matches the neighbours of ``e1`` and ``e2`` that are themselves aligned
   (by the model's predictions or the seed alignment),
3. enumerates the relation paths from each central entity to its matched
   neighbours and embeds them with Eq. 2,
4. performs bidirectional (mutual nearest neighbour) matching over the path
   embeddings; the triples of mutually matched paths form the semantic
   matching subgraph, which is the explanation.

Since the batch-engine refactor all of the heavy lifting happens inside
:class:`repro.core.engine.ExplanationEngine`: path enumeration, embedding
and normalisation are shared across pairs (and across calls, via
version-guarded caches), and :meth:`ExplanationGenerator.explain` is just
the batch-of-one case of :meth:`ExplanationGenerator.explain_pairs` — the
two are guaranteed to produce identical explanations.
:meth:`ExplanationGenerator.explain_sequential` preserves the original
pair-at-a-time implementation as the equivalence/benchmark reference.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...embedding import cosine_matrix, mutual_nearest_pairs
from ...kg import AlignmentSet, EADataset
from ...models import EAModel
from ..engine import ExplanationEngine
from .paths import RelationPath, enumerate_paths, path_embeddings
from .subgraph import Explanation, MatchedPath


@dataclass
class ExplanationConfig:
    """Configuration of the explanation generator.

    Attributes:
        max_hops: neighbourhood radius ``h`` for candidate triples and
            matched neighbours (the paper uses ``h <= 2``; 1 by default).
        max_paths_per_neighbor: cap on enumerated paths per matched
            neighbour (keeps worst-case cost bounded on dense entities).
        min_path_similarity: discard matched path pairs whose embedding
            similarity falls below this threshold.
    """

    max_hops: int = 1
    max_paths_per_neighbor: int = 8
    min_path_similarity: float = -1.0


class ExplanationGenerator:
    """Generates semantic-matching-subgraph explanations for EA pairs."""

    def __init__(
        self,
        model: EAModel,
        dataset: EADataset | None = None,
        config: ExplanationConfig | None = None,
    ) -> None:
        if not model.is_fitted:
            raise ValueError("the EA model must be fitted before explaining its results")
        self.model = model
        self.dataset = dataset or model.dataset
        if self.dataset is None:
            raise ValueError("a dataset is required (none attached to the model)")
        self.config = config or ExplanationConfig()
        self.engine = ExplanationEngine(model, self.dataset, self.config)

    # ------------------------------------------------------------------
    # Neighbour matching
    # ------------------------------------------------------------------
    def _neighborhood(self, kg, entity: str) -> set[str]:
        """Entities within ``max_hops`` hops of *entity* (excluding itself)."""
        return set(kg.entities_within_hops(entity, self.config.max_hops))

    def matched_neighbors(
        self, source: str, target: str, alignment: AlignmentSet
    ) -> list[tuple[str, str]]:
        """Neighbour pairs of (source, target) that are aligned by *alignment*.

        The alignment passed in is typically the union of the model's
        predictions and the seed alignment ("predicted to be aligned by the
        model or are themselves in seed alignment").  The central pair
        itself is never returned.
        """
        return self.engine.matched_neighbors(source, target, alignment)

    # ------------------------------------------------------------------
    # Explanation generation
    # ------------------------------------------------------------------
    def reference_alignment(self, extra: AlignmentSet | None = None) -> AlignmentSet:
        """Model predictions plus seed alignment (plus *extra* if given)."""
        reference = self.model.predict().copy()
        reference.update(self.dataset.train_alignment.pairs)
        if extra is not None:
            reference.update(extra.pairs)
        return reference

    def explain(
        self,
        source: str,
        target: str,
        alignment: AlignmentSet | None = None,
    ) -> Explanation:
        """Generate the explanation for the EA pair ``(source, target)``.

        This is the batch-of-one case of :meth:`explain_pairs`; both run
        through the shared engine and produce identical results.

        Args:
            source: entity of the source KG.
            target: entity of the target KG.
            alignment: the alignment used to match neighbours.  When omitted
                the model's own predictions plus the seed alignment are used
                (the standard post-hoc explanation setting); the repair
                algorithms pass their current working alignment instead.
        """
        if alignment is None:
            alignment = self.reference_alignment()
        return self.engine.explain_batch([(source, target)], alignment)[(source, target)]

    def explain_pairs(
        self,
        pairs: list[tuple[str, str]],
        alignment: AlignmentSet | None = None,
    ) -> dict[tuple[str, str], Explanation]:
        """Generate explanations for several EA pairs with one shared alignment.

        Batched: matched-neighbour pairs are gathered for every pair first,
        paths are enumerated once per unique endpoint pair, all path
        embeddings are stacked and normalised in one shot, and each pair's
        mutual-nearest matching is a small dot product over the shared
        matrix.
        """
        if alignment is None:
            alignment = self.reference_alignment()
        return self.engine.explain_batch(pairs, alignment)

    # ------------------------------------------------------------------
    # Sequential reference implementation
    # ------------------------------------------------------------------
    def explain_sequential(
        self,
        source: str,
        target: str,
        alignment: AlignmentSet | None = None,
    ) -> Explanation:
        """The original pair-at-a-time implementation, kept as a reference.

        Used by the equivalence test suite and the engine speed-up
        benchmark: it embeds and normalises each pair's paths from scratch
        instead of going through the engine's shared caches.  Its output
        must match :meth:`explain` exactly.
        """
        config = self.config
        if alignment is None:
            alignment = self.reference_alignment()

        candidates1 = self.dataset.kg1.triples_within_hops(source, config.max_hops)
        candidates2 = self.dataset.kg2.triples_within_hops(target, config.max_hops)
        explanation = Explanation(
            source=source,
            target=target,
            candidate_triples1=candidates1,
            candidate_triples2=candidates2,
        )

        neighbor_pairs = self.engine.matched_neighbors(source, target, alignment)
        if not neighbor_pairs:
            return explanation

        paths1: list[RelationPath] = []
        paths2: list[RelationPath] = []
        for neighbor1, neighbor2 in neighbor_pairs:
            found1 = enumerate_paths(
                self.dataset.kg1, source, neighbor1, max_length=config.max_hops
            )[: config.max_paths_per_neighbor]
            found2 = enumerate_paths(
                self.dataset.kg2, target, neighbor2, max_length=config.max_hops
            )[: config.max_paths_per_neighbor]
            paths1.extend(found1)
            paths2.extend(found2)
        if not paths1 or not paths2:
            return explanation

        embeddings1 = path_embeddings(paths1, self.model)
        embeddings2 = path_embeddings(paths2, self.model)
        similarity = cosine_matrix(embeddings1, embeddings2)
        neighbor_pair_set = set(neighbor_pairs)
        for i, j in mutual_nearest_pairs(similarity):
            path1, path2 = paths1[i], paths2[j]
            if (path1.target, path2.target) not in neighbor_pair_set:
                continue
            score = float(similarity[i, j])
            if score < config.min_path_similarity:
                continue
            explanation.matched_paths.append(MatchedPath(path1, path2, score))
        explanation.matched_paths.sort(key=lambda m: -m.similarity)
        return explanation
