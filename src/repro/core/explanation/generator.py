"""Semantic matching subgraph generation (Section III-A).

Given an EA pair ``(e1, e2)`` predicted by a model, the generator

1. collects the candidate triples ``T_e1`` and ``T_e2`` within ``h`` hops,
2. matches the neighbours of ``e1`` and ``e2`` that are themselves aligned
   (by the model's predictions or the seed alignment),
3. enumerates the relation paths from each central entity to its matched
   neighbours and embeds them with Eq. 2,
4. performs bidirectional (mutual nearest neighbour) matching over the path
   embeddings; the triples of mutually matched paths form the semantic
   matching subgraph, which is the explanation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...embedding import cosine_matrix, mutual_nearest_pairs
from ...kg import AlignmentSet, EADataset
from ...models import EAModel
from .paths import RelationPath, enumerate_paths, path_embeddings
from .subgraph import Explanation, MatchedPath


@dataclass
class ExplanationConfig:
    """Configuration of the explanation generator.

    Attributes:
        max_hops: neighbourhood radius ``h`` for candidate triples and
            matched neighbours (the paper uses ``h <= 2``; 1 by default).
        max_paths_per_neighbor: cap on enumerated paths per matched
            neighbour (keeps worst-case cost bounded on dense entities).
        min_path_similarity: discard matched path pairs whose embedding
            similarity falls below this threshold.
    """

    max_hops: int = 1
    max_paths_per_neighbor: int = 8
    min_path_similarity: float = -1.0


class ExplanationGenerator:
    """Generates semantic-matching-subgraph explanations for EA pairs."""

    def __init__(
        self,
        model: EAModel,
        dataset: EADataset | None = None,
        config: ExplanationConfig | None = None,
    ) -> None:
        if not model.is_fitted:
            raise ValueError("the EA model must be fitted before explaining its results")
        self.model = model
        self.dataset = dataset or model.dataset
        if self.dataset is None:
            raise ValueError("a dataset is required (none attached to the model)")
        self.config = config or ExplanationConfig()

    # ------------------------------------------------------------------
    # Neighbour matching
    # ------------------------------------------------------------------
    def _neighborhood(self, kg, entity: str) -> set[str]:
        """Entities within ``max_hops`` hops of *entity* (excluding itself)."""
        frontier = {entity}
        seen = {entity}
        for _ in range(self.config.max_hops):
            next_frontier: set[str] = set()
            for node in frontier:
                next_frontier |= kg.neighbors(node)
            next_frontier -= seen
            seen |= next_frontier
            frontier = next_frontier
        return seen - {entity}

    def matched_neighbors(
        self, source: str, target: str, alignment: AlignmentSet
    ) -> list[tuple[str, str]]:
        """Neighbour pairs of (source, target) that are aligned by *alignment*.

        The alignment passed in is typically the union of the model's
        predictions and the seed alignment ("predicted to be aligned by the
        model or are themselves in seed alignment").  The central pair
        itself is never returned.
        """
        neighbors1 = self._neighborhood(self.dataset.kg1, source)
        neighbors2 = self._neighborhood(self.dataset.kg2, target)
        matched: list[tuple[str, str]] = []
        for neighbor1 in sorted(neighbors1):
            for neighbor2 in alignment.targets_of(neighbor1):
                if neighbor2 in neighbors2 and (neighbor1, neighbor2) != (source, target):
                    matched.append((neighbor1, neighbor2))
        return matched

    # ------------------------------------------------------------------
    # Explanation generation
    # ------------------------------------------------------------------
    def reference_alignment(self, extra: AlignmentSet | None = None) -> AlignmentSet:
        """Model predictions plus seed alignment (plus *extra* if given)."""
        reference = self.model.predict().copy()
        reference.update(self.dataset.train_alignment.pairs)
        if extra is not None:
            reference.update(extra.pairs)
        return reference

    def explain(
        self,
        source: str,
        target: str,
        alignment: AlignmentSet | None = None,
    ) -> Explanation:
        """Generate the explanation for the EA pair ``(source, target)``.

        Args:
            source: entity of the source KG.
            target: entity of the target KG.
            alignment: the alignment used to match neighbours.  When omitted
                the model's own predictions plus the seed alignment are used
                (the standard post-hoc explanation setting); the repair
                algorithms pass their current working alignment instead.
        """
        config = self.config
        if alignment is None:
            alignment = self.reference_alignment()

        candidates1 = self.dataset.kg1.triples_within_hops(source, config.max_hops)
        candidates2 = self.dataset.kg2.triples_within_hops(target, config.max_hops)
        explanation = Explanation(
            source=source,
            target=target,
            candidate_triples1=candidates1,
            candidate_triples2=candidates2,
        )

        neighbor_pairs = self.matched_neighbors(source, target, alignment)
        if not neighbor_pairs:
            return explanation

        paths1: list[RelationPath] = []
        paths2: list[RelationPath] = []
        for neighbor1, neighbor2 in neighbor_pairs:
            found1 = enumerate_paths(
                self.dataset.kg1, source, neighbor1, max_length=config.max_hops
            )[: config.max_paths_per_neighbor]
            found2 = enumerate_paths(
                self.dataset.kg2, target, neighbor2, max_length=config.max_hops
            )[: config.max_paths_per_neighbor]
            paths1.extend(found1)
            paths2.extend(found2)
        if not paths1 or not paths2:
            return explanation

        embeddings1 = path_embeddings(paths1, self.model)
        embeddings2 = path_embeddings(paths2, self.model)
        similarity = cosine_matrix(embeddings1, embeddings2)
        for i, j in mutual_nearest_pairs(similarity):
            path1, path2 = paths1[i], paths2[j]
            # Only keep matches that actually connect a matched neighbour pair:
            # bidirectional matching is done over all paths, but a pair of
            # paths leading to unrelated neighbours is not semantic evidence.
            if (path1.target, path2.target) not in neighbor_pairs:
                continue
            score = float(similarity[i, j])
            if score < config.min_path_similarity:
                continue
            explanation.matched_paths.append(MatchedPath(path1, path2, score))
        explanation.matched_paths.sort(key=lambda m: -m.similarity)
        return explanation

    def explain_pairs(
        self,
        pairs: list[tuple[str, str]],
        alignment: AlignmentSet | None = None,
    ) -> dict[tuple[str, str], Explanation]:
        """Generate explanations for several EA pairs with one shared alignment."""
        if alignment is None:
            alignment = self.reference_alignment()
        return {
            (source, target): self.explain(source, target, alignment)
            for source, target in pairs
        }
