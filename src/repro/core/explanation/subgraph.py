"""The semantic matching subgraph that serves as an EA explanation.

The paper defines the explanation of an EA pair as the smallest subset of
candidate triples such that the model still predicts the pair when all the
other candidate triples are removed (Section II-B), and generates it as a
semantically matching subgraph (Section III-A).  :class:`Explanation` holds
the matched paths/triples plus the candidate set, from which the sparsity
metric is computed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...kg import Triple
from .paths import RelationPath


@dataclass(frozen=True)
class MatchedPath:
    """A pair of mutually most-similar relation paths across the two KGs."""

    path1: RelationPath
    path2: RelationPath
    similarity: float

    @property
    def neighbor_pair(self) -> tuple[str, str]:
        """The matched neighbour entities the two paths lead to."""
        return (self.path1.target, self.path2.target)


@dataclass
class Explanation:
    """The explanation (semantic matching subgraph) of one EA pair.

    Attributes:
        source: the source entity ``e1``.
        target: the target entity ``e2``.
        matched_paths: mutually matched relation-path pairs.
        candidate_triples1 / candidate_triples2: the candidate sets ``T_e1``
            and ``T_e2`` the explanation was selected from.
    """

    source: str
    target: str
    matched_paths: list[MatchedPath] = field(default_factory=list)
    candidate_triples1: set[Triple] = field(default_factory=set)
    candidate_triples2: set[Triple] = field(default_factory=set)

    # ------------------------------------------------------------------
    @property
    def pair(self) -> tuple[str, str]:
        return (self.source, self.target)

    @property
    def triples1(self) -> set[Triple]:
        """Explanation triples from the source KG."""
        return {t for match in self.matched_paths for t in match.path1.triples}

    @property
    def triples2(self) -> set[Triple]:
        """Explanation triples from the target KG."""
        return {t for match in self.matched_paths for t in match.path2.triples}

    @property
    def triples(self) -> set[Triple]:
        """All explanation triples (both KGs)."""
        return self.triples1 | self.triples2

    @property
    def matched_neighbors(self) -> list[tuple[str, str]]:
        """Distinct matched neighbour entity pairs, in insertion order."""
        seen: list[tuple[str, str]] = []
        for match in self.matched_paths:
            pair = match.neighbor_pair
            if pair not in seen:
                seen.append(pair)
        return seen

    @property
    def is_empty(self) -> bool:
        """True if no matching subgraph was found."""
        return not self.matched_paths

    # ------------------------------------------------------------------
    def num_candidates(self) -> int:
        """Size of the candidate triple set ``T_(e1, e2)``."""
        return len(self.candidate_triples1 | self.candidate_triples2)

    def sparsity(self) -> float:
        """Sparsity ``1 - |T'| / |T|`` (Eq. 13); higher means shorter explanations."""
        total = self.num_candidates()
        if total == 0:
            return 0.0
        return 1.0 - len(self.triples) / total

    def removed_triples(self) -> tuple[set[Triple], set[Triple]]:
        """Candidate triples *not* in the explanation, per KG.

        These are the triples the fidelity protocol removes from the
        dataset before retraining (Section V-B.2).
        """
        kept = self.triples
        removed1 = {t for t in self.candidate_triples1 if t not in kept}
        removed2 = {t for t in self.candidate_triples2 if t not in kept}
        return removed1, removed2

    def summary(self) -> str:
        """One-line human-readable description."""
        return (
            f"Explanation({self.source} ≡ {self.target}: "
            f"{len(self.matched_paths)} matched paths, "
            f"{len(self.triples)}/{self.num_candidates()} triples, "
            f"sparsity={self.sparsity():.3f})"
        )

    def render(self) -> str:
        """Multi-line rendering of the matching subgraph (for the case study)."""
        lines = [f"{self.source} sameAs {self.target}"]
        for match in self.matched_paths:
            left = " / ".join(str(t) for t in match.path1.triples)
            right = " / ".join(str(t) for t in match.path2.triples)
            lines.append(f"  {left}   <->   {right}   (sim={match.similarity:.3f})")
        if not self.matched_paths:
            lines.append("  (no matching subgraph found)")
        return "\n".join(lines)
