"""Explanation generation: semantic matching subgraphs (Section III-A)."""

from .generator import ExplanationConfig, ExplanationGenerator
from .paths import RelationPath, enumerate_paths, path_embedding, path_embeddings
from .subgraph import Explanation, MatchedPath

__all__ = [
    "Explanation",
    "ExplanationConfig",
    "ExplanationGenerator",
    "MatchedPath",
    "RelationPath",
    "enumerate_paths",
    "path_embedding",
    "path_embeddings",
]
