"""Relation-alignment conflict detection and resolution (cr1, Section IV-A).

A relation-alignment conflict exists when the matched triples of an ADG's
central pair, combined with the relation alignment and the mined ¬sameAs
rules, allow inferring that the two central entities are *not* the same.

Example (paper Fig. 3a): central pair (Joe Biden, Barack Obama), neighbour
node (Donald John Trump, Donald Trump).  The KG1 triple
``(Donald John Trump, followed_by, Joe Biden)`` translates to the cross-KG
triple ``(Donald Trump, successor, Joe Biden)``; KG2 contains
``(Donald Trump, predecessor, Barack Obama)``; the rule
``(x, successor, y) ∧ (x, predecessor, z) → y ¬sameAs z`` then infers
``Joe Biden ¬sameAs Barack Obama`` — a conflict with the predicted sameAs.

Because both the relation alignment and the rules may be noisy, the
conflict is *soft*: the conflicting neighbour node is removed from the ADG
and the explanation confidence is recomputed, which weakens (rather than
deletes) the corresponding EA pair for the later repair stages.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...kg import KnowledgeGraph, Triple
from ..adg import ADGBuilder, AlignmentDependencyGraph, EdgeType
from .rules import NotSameAsRuleSet, RelationAlignment


@dataclass(frozen=True)
class RelationConflict:
    """One detected relation-alignment conflict."""

    central_pair: tuple[str, str]
    neighbor_pair: tuple[str, str]
    relation1: str
    relation2: str
    direction: str  # "kg1->kg2" or "kg2->kg1"


class RelationConflictResolver:
    """Detects and softly resolves relation-alignment conflicts in ADGs."""

    def __init__(
        self,
        kg1: KnowledgeGraph,
        kg2: KnowledgeGraph,
        relation_alignment: RelationAlignment,
        rules_kg1: NotSameAsRuleSet,
        rules_kg2: NotSameAsRuleSet,
    ) -> None:
        self.kg1 = kg1
        self.kg2 = kg2
        self.relation_alignment = relation_alignment
        self.rules_kg1 = rules_kg1
        self.rules_kg2 = rules_kg2

    # ------------------------------------------------------------------
    # Detection
    # ------------------------------------------------------------------
    def detect(self, graph: AlignmentDependencyGraph) -> list[RelationConflict]:
        """Detect conflicts on the strongly-influential edges of *graph*.

        Only strong edges are examined: the paper generates cross-KG triples
        only for entities with strongly-influential edges in ADGs to keep
        reasoning tractable.
        """
        conflicts: list[RelationConflict] = []
        central_source, central_target = graph.pair
        for edge in graph.edges:
            if edge.edge_type is not EdgeType.STRONG:
                continue
            triple1 = edge.matched_path.path1.triples[0]
            triple2 = edge.matched_path.path2.triples[0]
            neighbor1, neighbor2 = edge.neighbor.pair

            mapped1 = self.relation_alignment.forward.get(triple1.relation)
            if mapped1 is not None and mapped1 != triple2.relation:
                # The KG1 triple, translated into KG2, attaches the central
                # target to neighbor2 via mapped1, while KG2 itself attaches
                # it via triple2.relation.  If a ¬sameAs rule covers the two
                # relations, the two "central" entities cannot coincide.
                if self._same_orientation(triple1, central_source, triple2, central_target):
                    if self.rules_kg2.applies(mapped1, triple2.relation):
                        conflicts.append(
                            RelationConflict(
                                central_pair=graph.pair,
                                neighbor_pair=(neighbor1, neighbor2),
                                relation1=mapped1,
                                relation2=triple2.relation,
                                direction="kg1->kg2",
                            )
                        )
                        continue

            mapped2 = self.relation_alignment.counterpart(triple2.relation)
            if mapped2 is not None and mapped2 != triple1.relation:
                if self._same_orientation(triple2, central_target, triple1, central_source):
                    if self.rules_kg1.applies(mapped2, triple1.relation):
                        conflicts.append(
                            RelationConflict(
                                central_pair=graph.pair,
                                neighbor_pair=(neighbor1, neighbor2),
                                relation1=mapped2,
                                relation2=triple1.relation,
                                direction="kg2->kg1",
                            )
                        )
        return conflicts

    @staticmethod
    def _same_orientation(
        triple_a: Triple, central_a: str, triple_b: Triple, central_b: str
    ) -> bool:
        """True if the central entity plays the same role (head/tail) in both triples.

        The ¬sameAs rules share the *subject* variable, so the inference
        only applies when the neighbour entity is the subject of both
        triples, i.e. the central entities sit on the same (object) side.
        """
        central_a_is_tail = triple_a.tail == central_a
        central_b_is_tail = triple_b.tail == central_b
        return central_a_is_tail and central_b_is_tail

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def resolve(
        self, graph: AlignmentDependencyGraph, builder: ADGBuilder
    ) -> list[RelationConflict]:
        """Remove conflicting neighbour nodes and refresh the confidence.

        Returns the conflicts that were found (and resolved).  The graph is
        modified in place; the paper treats this as a soft resolution — the
        central pair itself is kept but its confidence drops, steering the
        later one-to-many / low-confidence repair.
        """
        conflicts = self.detect(graph)
        for conflict in conflicts:
            graph.remove_neighbor(*conflict.neighbor_pair)
        if conflicts:
            builder.refresh_confidence(graph)
        return conflicts
