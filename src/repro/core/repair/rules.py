"""Relation alignment mining and ¬sameAs rule mining (Section IV-A).

Two ingredients feed the relation-alignment conflict detector:

* a **relation alignment** between the two KGs.  The paper encodes relation
  names with a pre-trained language model (BERT) when names are available
  and falls back to the EA model's relation embeddings otherwise; aligned
  relations are the mutual best matches.  This reproduction replaces BERT
  with a character-n-gram name encoder (documented in DESIGN.md) combined
  with the model's relation embeddings.
* a set of **¬sameAs rules** per KG: a pair of different relations
  ``(r1, r2)`` yields the rule ``(x, r1, y) ∧ (x, r2, z) → y ¬sameAs z``
  when the two relations never point a common subject at the same object
  but do co-occur on at least one subject with different objects (the
  paper's "real rule instance" condition).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from ...embedding import cosine_matrix, greedy_match
from ...kg import KnowledgeGraph
from ...models import EAModel


# ----------------------------------------------------------------------
# Relation name similarity (BERT substitute)
# ----------------------------------------------------------------------
def _character_ngrams(text: str, n: int = 3) -> set[str]:
    cleaned = "".join(ch.lower() if ch.isalnum() else " " for ch in text)
    cleaned = " ".join(cleaned.split())
    padded = f"  {cleaned}  "
    return {padded[i:i + n] for i in range(len(padded) - n + 1)}


def relation_name_similarity(name1: str, name2: str) -> float:
    """Dice similarity of character trigrams of two relation names."""
    grams1 = _character_ngrams(name1)
    grams2 = _character_ngrams(name2)
    if not grams1 or not grams2:
        return 0.0
    return 2.0 * len(grams1 & grams2) / (len(grams1) + len(grams2))


# ----------------------------------------------------------------------
# Relation alignment
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RelationAlignment:
    """Mutual mapping between relations of the two KGs."""

    forward: dict[str, str] = field(default_factory=dict)

    def counterpart(self, relation: str) -> str | None:
        """The KG2 relation aligned with a KG1 relation (or vice versa)."""
        if relation in self.forward:
            return self.forward[relation]
        for source, target in self.forward.items():
            if target == relation:
                return source
        return None

    def are_aligned(self, relation1: str, relation2: str) -> bool:
        return self.forward.get(relation1) == relation2

    def __len__(self) -> int:
        return len(self.forward)

    def pairs(self) -> list[tuple[str, str]]:
        return sorted(self.forward.items())


def mine_relation_alignment(
    model: EAModel,
    kg1: KnowledgeGraph,
    kg2: KnowledgeGraph,
    name_weight: float = 0.5,
    min_score: float = 0.3,
) -> RelationAlignment:
    """Greedy mutual matching of relations across the two KGs.

    The matching score blends name similarity (the BERT stand-in) with the
    cosine similarity of the model's relation embeddings.  Greedy matching
    (highest scores first, each relation used once) keeps only pairs above
    ``min_score``.
    """
    relations1 = sorted(kg1.relations)
    relations2 = sorted(kg2.relations)
    if not relations1 or not relations2:
        return RelationAlignment()
    name_scores = np.array(
        [[relation_name_similarity(r1, r2) for r2 in relations2] for r1 in relations1]
    )
    embeddings1 = np.stack([model.relation_embedding(r) for r in relations1])
    embeddings2 = np.stack([model.relation_embedding(r) for r in relations2])
    embedding_scores = cosine_matrix(embeddings1, embeddings2)
    scores = name_weight * name_scores + (1.0 - name_weight) * embedding_scores

    forward: dict[str, str] = {}
    for i, j in greedy_match(scores):
        if scores[i, j] < min_score:
            continue
        forward[relations1[i]] = relations2[j]
    return RelationAlignment(forward=forward)


# ----------------------------------------------------------------------
# ¬sameAs rules
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NotSameAsRule:
    """Rule ``(x, relation1, y) ∧ (x, relation2, z) → (y, ¬sameAs, z)``."""

    relation1: str
    relation2: str

    def involves(self, relation1: str, relation2: str) -> bool:
        """True if the rule covers the (unordered) relation pair."""
        return {relation1, relation2} == {self.relation1, self.relation2}


class NotSameAsRuleSet:
    """Set of ¬sameAs rules mined from one KG, indexed for fast lookup."""

    def __init__(self, rules: list[NotSameAsRule] | None = None) -> None:
        self._pairs: set[frozenset[str]] = set()
        for rule in rules or []:
            self.add(rule)

    def add(self, rule: NotSameAsRule) -> None:
        self._pairs.add(frozenset((rule.relation1, rule.relation2)))

    def applies(self, relation1: str, relation2: str) -> bool:
        """True if a rule exists for the (unordered) relation pair."""
        if relation1 == relation2:
            return False
        return frozenset((relation1, relation2)) in self._pairs

    def __len__(self) -> int:
        return len(self._pairs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NotSameAsRuleSet):
            return NotImplemented
        return self._pairs == other._pairs

    def __hash__(self) -> int:
        return hash(frozenset(self._pairs))

    def __iter__(self):
        for pair in sorted(tuple(sorted(p)) for p in self._pairs):
            yield NotSameAsRule(*pair)


def mine_not_same_as_rules(kg: KnowledgeGraph) -> NotSameAsRuleSet:
    """Mine ¬sameAs rules from a single KG.

    For an ordered relation pair to yield a rule, two conditions must hold:

    1. the relations never share a (subject, object) pair — otherwise the
       objects can clearly coincide;
    2. at least one subject has both relations with different objects — the
       "real rule instance" filter the paper adds to avoid vacuous rules.
    """
    # subject -> relation -> objects
    objects_by_subject: dict[str, dict[str, set[str]]] = defaultdict(lambda: defaultdict(set))
    for triple in kg.triples:
        objects_by_subject[triple.head][triple.relation].add(triple.tail)

    candidate_pairs: set[frozenset[str]] = set()
    violating_pairs: set[frozenset[str]] = set()
    for relation_objects in objects_by_subject.values():
        relations = sorted(relation_objects)
        for i, relation1 in enumerate(relations):
            for relation2 in relations[i + 1:]:
                pair = frozenset((relation1, relation2))
                objects1 = relation_objects[relation1]
                objects2 = relation_objects[relation2]
                if objects1 & objects2:
                    # The two relations point this subject at the same
                    # object: the rule would be wrong.
                    violating_pairs.add(pair)
                if objects1 - objects2 or objects2 - objects1:
                    candidate_pairs.add(pair)

    rules = NotSameAsRuleSet()
    for pair in candidate_pairs - violating_pairs:
        relation1, relation2 = sorted(pair)
        rules.add(NotSameAsRule(relation1, relation2))
    return rules
