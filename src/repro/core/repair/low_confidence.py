"""Low-confidence conflict repair — Algorithm 2 of the paper (Section IV-C).

After the one-to-many resolution some alignment pairs lose their matched
neighbours and end up with explanations that no longer support them
(no strongly-influential edges → confidence below ``beta = sigmoid(0)``).
Those pairs are released and re-aligned: for every unaligned source the
repair searches candidate targets whose neighbourhood can form a confident
explanation, scores them by ``confidence + alpha * model similarity``
(balancing local explanation evidence against the model's global view),
and arbitrates collisions by the same score.  Sources that still cannot be
aligned at the end are greedily matched with the remaining free targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ...kg import AlignmentSet, AlignmentUnionView, EADataset

#: ``confidence(source, target, alignment)`` oracle, as in Algorithm 1.
ConfidenceFn = Callable[[str, str, AlignmentSet], float]
#: ``similarity(source, target)`` from the original EA model.
SimilarityFn = Callable[[str, str], float]


@dataclass
class LowConfidenceRepairResult:
    """Outcome of the low-confidence repair stage."""

    alignment: AlignmentSet
    num_low_confidence: int = 0
    num_reassigned: int = 0
    num_greedy_fallback: int = 0
    iterations: int = 0
    released_pairs: list[tuple[str, str]] = field(default_factory=list)


class LowConfidenceRepairer:
    """Implements Algorithm 2 on top of a confidence / similarity oracle."""

    def __init__(
        self,
        dataset: EADataset,
        confidence: ConfidenceFn,
        similarity: SimilarityFn,
        seed_alignment: AlignmentSet,
        beta: float = 0.5,
        score_alpha: float = 1.0,
        k: int = 5,
        max_candidates: int = 25,
        max_iterations: int = 10,
        allow_takeover: bool = True,
    ) -> None:
        self.dataset = dataset
        self.confidence = confidence
        self.similarity = similarity
        self.seed_alignment = seed_alignment
        self.beta = beta
        self.score_alpha = score_alpha
        self.k = k
        self.max_candidates = max_candidates
        self.max_iterations = max_iterations
        # When one-to-many conflict resolution is ablated (cr2 off), this
        # stage must not arbitrate target collisions either — otherwise it
        # would silently re-introduce the ablated capability.
        self.allow_takeover = allow_takeover

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _reference(self, working: AlignmentSet) -> AlignmentUnionView:
        """Live (working ∪ seed) view — no per-query alignment copying."""
        return AlignmentUnionView(working, self.seed_alignment)

    def _low_confidence_pairs(
        self, working: AlignmentSet, protected: set[tuple[str, str]]
    ) -> list[tuple[str, str]]:
        """Pairs of *working* whose explanation confidence falls below beta."""
        reference = self._reference(working)
        flagged = []
        for source, target in sorted(working.pairs):
            if (source, target) in protected:
                continue
            # A confidence of exactly beta (= sigmoid(0)) means the ADG has
            # no influential edges at all, which is the canonical
            # low-confidence case, so the comparison is inclusive.
            if self.confidence(source, target, reference) <= self.beta:
                flagged.append((source, target))
        return flagged

    def _candidates(self, source: str, working: AlignmentSet) -> list[str]:
        """Candidate targets whose neighbourhood shares an aligned entity with *source*.

        These are the targets that can form an explanation with at least one
        matched neighbour, hence a confidence above 0.5 ("target entities
        with aligned neighbors" in the paper).

        Runs on the integer :class:`~repro.kg.KGIndex` adjacency: the
        neighbourhood walks are memoized sorted id lists instead of
        per-call set builds + string sorts.  Ids follow sorted-entity
        order, so the candidate order is identical to the former
        sorted-string enumeration.
        """
        reference = self._reference(working)
        index1 = self.dataset.kg1.index()
        index2 = self.dataset.kg2.index()
        source_id = index1.entity_to_id.get(source)
        if source_id is None:
            return []
        candidates: list[str] = []
        seen: set[int] = set()
        valid_targets = self.dataset.test_targets() | working.targets()
        entities1 = index1.entities
        entities2 = index2.entities
        for neighbor1_id in index1.neighbor_ids(source_id):
            for neighbor2 in sorted(reference.targets_of(entities1[neighbor1_id])):
                neighbor2_id = index2.entity_to_id.get(neighbor2)
                if neighbor2_id is None:
                    continue
                for candidate_id in index2.neighbor_ids(neighbor2_id):
                    if candidate_id in seen:
                        continue
                    seen.add(candidate_id)
                    candidate = entities2[candidate_id]
                    if candidate not in valid_targets:
                        continue
                    candidates.append(candidate)
                    if len(candidates) >= self.max_candidates:
                        return candidates
        return candidates

    def _score(self, source: str, target: str, reference: AlignmentSet) -> float:
        """Alignment score: explanation confidence plus scaled model similarity."""
        return self.confidence(source, target, reference) + self.score_alpha * self.similarity(
            source, target
        )

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def repair(
        self,
        alignment: AlignmentSet,
        unaligned_sources: set[str] | None = None,
    ) -> LowConfidenceRepairResult:
        """Run Algorithm 2 starting from *alignment* (modified on a copy)."""
        working = alignment.copy()
        unaligned: set[str] = set(unaligned_sources or set())
        result = LowConfidenceRepairResult(alignment=working)
        protected: set[tuple[str, str]] = set()
        reference = self._reference(working)

        last_size = -1
        for iteration in range(self.max_iterations):
            result.iterations = iteration + 1
            flagged = self._low_confidence_pairs(working, protected)
            result.num_low_confidence += len(flagged)
            for source, target in flagged:
                working.remove(source, target)
                unaligned.add(source)
                result.released_pairs.append((source, target))
            if last_size > -1 and len(unaligned) >= last_size:
                break
            last_size = len(unaligned)

            still_unaligned: set[str] = set()
            for source in sorted(unaligned):
                candidates = self._candidates(source, working)
                if not candidates:
                    still_unaligned.add(source)
                    continue
                scored = sorted(
                    ((self._score(source, candidate, reference), candidate) for candidate in candidates),
                    key=lambda item: (-item[0], item[1]),
                )
                aligned = False
                for score, target in scored[: self.k]:
                    holders = working.sources_of(target)
                    if not holders:
                        working.add(source, target)
                        protected.add((source, target))
                        result.num_reassigned += 1
                        aligned = True
                        break
                    if not self.allow_takeover:
                        continue
                    holder = next(iter(holders))
                    holder_score = self._score(holder, target, reference)
                    if score > holder_score:
                        working.remove(holder, target)
                        working.add(source, target)
                        protected.add((source, target))
                        result.num_reassigned += 1
                        still_unaligned.add(holder)
                        aligned = True
                        break
                if not aligned:
                    still_unaligned.add(source)
            unaligned = still_unaligned
            if not unaligned:
                break

        self._greedy_fallback(working, unaligned, result)
        result.alignment = working
        return result

    def _greedy_fallback(
        self,
        working: AlignmentSet,
        unaligned: set[str],
        result: LowConfidenceRepairResult,
    ) -> None:
        """Greedily match leftover sources with still-free targets by similarity."""
        if not unaligned:
            return
        free_targets = sorted(self.dataset.test_targets() - working.targets())
        if not free_targets:
            return
        for source in sorted(unaligned):
            if not free_targets:
                break
            best = max(free_targets, key=lambda target: self.similarity(source, target))
            working.add(source, best)
            free_targets.remove(best)
            result.num_greedy_fallback += 1
