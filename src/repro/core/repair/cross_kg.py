"""Cross-KG triple construction (Section IV-A).

Given EA results, cross-KG triples are obtained by swapping aligned
entities (and, when a relation alignment is available, relations) in the
original triples, e.g. the KG1 triple
``(Donald John Trump, followed_by, Joe Biden)`` together with the alignment
``Donald John Trump ≡ Donald Trump`` and ``followed_by ≡ successor`` yields
the cross-KG triple ``(Donald Trump, successor, Joe Biden)``.  Reasoning
over these mixed triples with the mined ¬sameAs rules is what surfaces
relation-alignment conflicts.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...kg import AlignmentSet, Triple
from .rules import RelationAlignment


@dataclass(frozen=True)
class CrossKGTriple:
    """A triple translated from one KG into the vocabulary of the other.

    ``origin`` is the original triple; ``translated`` is the triple after
    swapping the aligned entity (and relation).  Entities that have no
    counterpart keep their original identifier (they act as foreign
    constants during reasoning, like *Joe Biden* in the paper's Fig. 3a).
    """

    origin: Triple
    translated: Triple


def translate_triple(
    triple: Triple,
    entity_alignment: AlignmentSet,
    relation_alignment: RelationAlignment | None = None,
    source_to_target: bool = True,
) -> CrossKGTriple | None:
    """Translate *triple* into the other KG's vocabulary.

    Args:
        triple: a triple of the source KG (or target KG when
            ``source_to_target`` is ``False``).
        entity_alignment: the current EA results plus seed alignment.
        relation_alignment: optional relation alignment; when the triple's
            relation has no counterpart the relation name is kept.
        source_to_target: direction of the translation.

    Returns:
        The cross-KG triple, or ``None`` when neither entity of the triple
        has a counterpart (the translation would be the identity and carries
        no cross-KG information).
    """
    def counterpart(entity: str) -> str | None:
        aligned = (
            entity_alignment.targets_of(entity)
            if source_to_target
            else entity_alignment.sources_of(entity)
        )
        if len(aligned) == 1:
            return next(iter(aligned))
        return None

    head_counterpart = counterpart(triple.head)
    tail_counterpart = counterpart(triple.tail)
    if head_counterpart is None and tail_counterpart is None:
        return None
    relation = triple.relation
    if relation_alignment is not None:
        mapped = (
            relation_alignment.forward.get(relation)
            if source_to_target
            else relation_alignment.counterpart(relation)
        )
        if mapped is not None:
            relation = mapped
    translated = Triple(
        head_counterpart or triple.head,
        relation,
        tail_counterpart or triple.tail,
    )
    return CrossKGTriple(origin=triple, translated=translated)


def cross_kg_triples_for_entity(
    entity: str,
    triples: set[Triple],
    entity_alignment: AlignmentSet,
    relation_alignment: RelationAlignment | None = None,
    source_to_target: bool = True,
) -> list[CrossKGTriple]:
    """Cross-KG triples derived from the triples incident to *entity*.

    The paper only generates cross-KG triples for entities that have
    strongly-influential edges in ADGs; the caller is responsible for that
    filtering — this helper just translates the given triples.
    """
    results: list[CrossKGTriple] = []
    for triple in sorted(triples):
        if not triple.contains_entity(entity):
            continue
        translated = translate_triple(
            triple, entity_alignment, relation_alignment, source_to_target
        )
        if translated is not None:
            results.append(translated)
    return results
