"""EA repair: conflict detection and resolution (Section IV)."""

from .cross_kg import CrossKGTriple, cross_kg_triples_for_entity, translate_triple
from .low_confidence import LowConfidenceRepairer, LowConfidenceRepairResult
from .one_to_many import (
    OneToManyRepairResult,
    repair_one_to_many,
    resolve_to_one_to_one,
)
from .pipeline import EARepairer, RepairConfig, RepairResult
from .relation_conflicts import RelationConflict, RelationConflictResolver
from .rules import (
    NotSameAsRule,
    NotSameAsRuleSet,
    RelationAlignment,
    mine_not_same_as_rules,
    mine_relation_alignment,
    relation_name_similarity,
)

__all__ = [
    "CrossKGTriple",
    "EARepairer",
    "LowConfidenceRepairer",
    "LowConfidenceRepairResult",
    "NotSameAsRule",
    "NotSameAsRuleSet",
    "OneToManyRepairResult",
    "RelationAlignment",
    "RelationConflict",
    "RelationConflictResolver",
    "RepairConfig",
    "RepairResult",
    "cross_kg_triples_for_entity",
    "mine_not_same_as_rules",
    "mine_relation_alignment",
    "relation_name_similarity",
    "repair_one_to_many",
    "resolve_to_one_to_one",
    "translate_triple",
]
