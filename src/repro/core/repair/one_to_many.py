"""One-to-many conflict repair — Algorithm 1 of the paper (Section IV-B).

A one-to-many conflict arises when several source entities are predicted to
align with the same target entity: since entities within one KG are
distinct, at most one of those predictions can be correct.  The repair
keeps the prediction with the highest explanation confidence, releases the
others, and iteratively re-aligns the released sources with their top-k
most similar targets, again arbitrating collisions by confidence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ...embedding import top_k_indices
from ...kg import AlignmentSet, AlignmentUnionView

#: Callable computing the explanation confidence of a candidate pair under
#: the current working alignment: ``confidence(source, target, alignment)``.
#: The alignment argument may be an :class:`AlignmentSet` or a live
#: :class:`AlignmentUnionView` (working ∪ seed).
ConfidenceFn = Callable[[str, str, AlignmentSet], float]


@dataclass
class OneToManyRepairResult:
    """Outcome of the one-to-many repair stage."""

    alignment: AlignmentSet
    unaligned_sources: set[str]
    num_conflicts: int = 0
    num_reassigned: int = 0
    iterations: int = 0
    resolved_pairs: list[tuple[str, str]] = field(default_factory=list)


def resolve_to_one_to_one(
    predictions: AlignmentSet,
    confidence: ConfidenceFn,
    reference_alignment: AlignmentSet | AlignmentUnionView,
) -> tuple[AlignmentSet, set[str], int]:
    """The ``OnetoOne`` step (line 1): keep the most confident pair per target.

    Returns the one-to-one alignment, the set of released source entities,
    and the number of conflicting targets found.
    """
    resolved = AlignmentSet()
    released: set[str] = set()
    conflicts = predictions.one_to_many_targets()
    for source, target in predictions:
        if target not in conflicts:
            resolved.add(source, target)
    for target, sources in sorted(conflicts.items()):
        scored = sorted(
            ((confidence(source, target, reference_alignment), source) for source in sources),
            key=lambda item: (-item[0], item[1]),
        )
        best_source = scored[0][1]
        resolved.add(best_source, target)
        released |= {source for source in sources if source != best_source}
    return resolved, released, len(conflicts)


def repair_one_to_many(
    predictions: AlignmentSet,
    similarity: np.ndarray,
    source_entities: Sequence[str],
    target_entities: Sequence[str],
    confidence: ConfidenceFn,
    seed_alignment: AlignmentSet,
    k: int = 5,
    max_iterations: int = 20,
) -> OneToManyRepairResult:
    """Algorithm 1: repair one-to-many conflicts in *predictions*.

    Args:
        predictions: the model's EA results ``A_res`` (greedy, may contain
            one-to-many conflicts).
        similarity: pairwise similarity matrix between *source_entities*
            (rows) and *target_entities* (columns), from the original model.
        source_entities / target_entities: orderings matching *similarity*.
        confidence: explanation-confidence oracle ``conf(e1, e2, alignment)``.
        seed_alignment: the training alignment ``A_train`` (used, together
            with the working alignment, as the reference for explanations).
        k: number of candidate targets examined per unaligned source.
        max_iterations: hard cap on the outer loop (the algorithm already
            stops when no progress is made).

    Returns:
        The repaired one-to-one alignment plus bookkeeping counters.
    """
    source_index = {entity: i for i, entity in enumerate(source_entities)}
    top_k_cache: dict[str, list[str]] = {}

    def top_candidates(source: str) -> list[str]:
        if source not in top_k_cache:
            row = similarity[source_index[source]]
            top_k_cache[source] = [target_entities[j] for j in top_k_indices(row, k)]
        return top_k_cache[source]

    working, unaligned, num_conflicts = resolve_to_one_to_one(
        predictions, confidence, AlignmentUnionView(predictions, seed_alignment)
    )
    result = OneToManyRepairResult(
        alignment=working,
        unaligned_sources=set(unaligned),
        num_conflicts=num_conflicts,
    )

    # Live view of (working ∪ seed): confidence queries see every mutation
    # of ``working`` immediately, with no per-query alignment copying.
    reference = AlignmentUnionView(working, seed_alignment)
    iterations = 0
    while unaligned and iterations < max_iterations:
        iterations += 1
        last_size = len(unaligned)
        still_unaligned: set[str] = set()
        for source in sorted(unaligned):
            if source not in source_index:
                continue
            aligned = False
            for target in top_candidates(source):
                holders = working.sources_of(target)
                if not holders:
                    working.add(source, target)
                    result.num_reassigned += 1
                    result.resolved_pairs.append((source, target))
                    aligned = True
                    break
                current_holder = next(iter(holders))
                challenger_conf = confidence(source, target, reference)
                holder_conf = confidence(current_holder, target, reference)
                if challenger_conf > holder_conf:
                    working.remove(current_holder, target)
                    working.add(source, target)
                    result.num_reassigned += 1
                    result.resolved_pairs.append((source, target))
                    still_unaligned.add(current_holder)
                    aligned = True
                    break
            if not aligned:
                still_unaligned.add(source)
        unaligned = still_unaligned
        if len(unaligned) >= last_size:
            break

    result.alignment = working
    result.unaligned_sources = unaligned
    result.iterations = iterations
    return result
