"""The full ExEA repair pipeline: cr1 + cr2 + cr3 (Section IV).

The pipeline takes the base model's predictions ``A_res`` and repairs them
by resolving the three conflict types in order:

1. **relation-alignment conflicts (cr1)** — soft: conflicting neighbour
   nodes are removed from ADGs so the affected pairs lose confidence;
2. **one-to-many conflicts (cr2)** — Algorithm 1;
3. **low-confidence conflicts (cr3)** — Algorithm 2.

Each stage can be disabled individually, which is what the ablation
experiments of Table IV and Fig. 6 measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...kg import AlignmentSet, EADataset
from ...models import EAModel
from ..adg import ADGBuilder, ADGConfig, AlignmentDependencyGraph, low_confidence_threshold
from ..explanation import Explanation, ExplanationConfig, ExplanationGenerator
from .low_confidence import LowConfidenceRepairer, LowConfidenceRepairResult
from .one_to_many import OneToManyRepairResult, repair_one_to_many
from .relation_conflicts import RelationConflictResolver
from .rules import (
    NotSameAsRuleSet,
    RelationAlignment,
    mine_not_same_as_rules,
    mine_relation_alignment,
)


@dataclass
class RepairConfig:
    """Configuration of the repair pipeline.

    The three ``enable_*`` switches correspond to cr1 / cr2 / cr3 in the
    paper's ablation study.
    """

    enable_relation_conflicts: bool = True
    enable_one_to_many: bool = True
    enable_low_confidence: bool = True
    candidate_k: int = 5
    score_alpha: float = 1.0
    beta: float | None = None
    max_iterations: int = 10
    explanation: ExplanationConfig = field(default_factory=ExplanationConfig)
    adg: ADGConfig = field(default_factory=ADGConfig)


@dataclass
class RepairResult:
    """Outcome of the full repair pipeline."""

    base_alignment: AlignmentSet
    repaired_alignment: AlignmentSet
    base_accuracy: float
    repaired_accuracy: float
    num_relation_conflicts: int = 0
    one_to_many: OneToManyRepairResult | None = None
    low_confidence: LowConfidenceRepairResult | None = None

    @property
    def accuracy_gain(self) -> float:
        """Δacc, the improvement reported in Table III."""
        return self.repaired_accuracy - self.base_accuracy


class EARepairer:
    """Repairs the EA results of a fitted model using ExEA explanations."""

    def __init__(
        self,
        model: EAModel,
        dataset: EADataset | None = None,
        config: RepairConfig | None = None,
    ) -> None:
        if not model.is_fitted:
            raise ValueError("the EA model must be fitted before repairing its results")
        self.model = model
        self.dataset = dataset or model.dataset
        if self.dataset is None:
            raise ValueError("a dataset is required (none attached to the model)")
        self.config = config or RepairConfig()
        self.generator = ExplanationGenerator(model, self.dataset, self.config.explanation)
        self.adg_builder = ADGBuilder(model, self.dataset, self.config.adg)
        self._relation_alignment: RelationAlignment | None = None
        self._rules_kg1: NotSameAsRuleSet | None = None
        self._rules_kg2: NotSameAsRuleSet | None = None
        self._conflict_resolver: RelationConflictResolver | None = None
        #: token the mined artefacts were mined under (None = nothing mined)
        self._mined_token: tuple[int, int, int] | None = None
        self._similarity_cache: dict[tuple[str, str], float] = {}
        self._similarity_version: int = model.embedding_version
        #: key -> (confidence, relation conflicts resolved by that ADG build)
        self._confidence_cache: dict[tuple, tuple[float, int]] = {}
        self._confidence_token: tuple[int, int, int] | None = None
        self._num_relation_conflicts = 0

    # ------------------------------------------------------------------
    # Lazily mined reasoning artefacts
    # ------------------------------------------------------------------
    def _token(self) -> tuple[int, int, int]:
        return (
            self.dataset.kg1.version,
            self.dataset.kg2.version,
            self.model.embedding_version,
        )

    def _ensure_mined_fresh(self) -> None:
        """Drop mined artefacts when either graph or the model moved on.

        The relation alignment and ¬sameAs rule sets are mined from the
        *whole* graphs (relation inventories, full triple scans), so any
        mutation can change them; re-mining lazily under the current token
        keeps live results bit-identical with a cold rebuild.
        """
        if self._mined_token is not None and self._mined_token != self._token():
            self._relation_alignment = None
            self._rules_kg1 = None
            self._rules_kg2 = None
            self._conflict_resolver = None
            self._mined_token = None

    @property
    def relation_alignment(self) -> RelationAlignment:
        """Mutual relation alignment between the two KGs (mined on first use)."""
        self._ensure_mined_fresh()
        if self._relation_alignment is None:
            self._relation_alignment = mine_relation_alignment(
                self.model, self.dataset.kg1, self.dataset.kg2
            )
            self._mined_token = self._token()
        return self._relation_alignment

    @property
    def not_same_as_rules(self) -> tuple[NotSameAsRuleSet, NotSameAsRuleSet]:
        """¬sameAs rule sets of the two KGs (mined on first use)."""
        self._ensure_mined_fresh()
        if self._rules_kg1 is None or self._rules_kg2 is None:
            self._rules_kg1 = mine_not_same_as_rules(self.dataset.kg1)
            self._rules_kg2 = mine_not_same_as_rules(self.dataset.kg2)
            self._mined_token = self._token()
        return self._rules_kg1, self._rules_kg2

    @property
    def conflict_resolver(self) -> RelationConflictResolver:
        self._ensure_mined_fresh()
        if self._conflict_resolver is None:
            rules_kg1, rules_kg2 = self.not_same_as_rules
            self._conflict_resolver = RelationConflictResolver(
                self.dataset.kg1,
                self.dataset.kg2,
                self.relation_alignment,
                rules_kg1,
                rules_kg2,
            )
        return self._conflict_resolver

    def _mined_artifacts_changed(self) -> bool:
        """Re-mine under the current graphs; True when any artefact differs.

        Artefacts that were never mined cannot have influenced any cached
        confidence, so they do not count as changed.
        """
        old_alignment = self._relation_alignment
        old_rules = (self._rules_kg1, self._rules_kg2)
        self._relation_alignment = None
        self._rules_kg1 = None
        self._rules_kg2 = None
        self._conflict_resolver = None
        self._mined_token = None
        changed = False
        if old_alignment is not None and self.relation_alignment != old_alignment:
            changed = True
        if old_rules[0] is not None and self.not_same_as_rules != old_rules:
            changed = True
        return changed

    # ------------------------------------------------------------------
    # Confidence oracle shared by the repair stages
    # ------------------------------------------------------------------
    def explain(self, source: str, target: str, alignment: AlignmentSet) -> Explanation:
        """Explanation of the pair under the given working alignment."""
        return self.generator.explain(source, target, alignment)

    def build_adg(
        self, explanation: Explanation, resolve_conflicts: bool | None = None
    ) -> AlignmentDependencyGraph:
        """ADG of *explanation*, with cr1 filtering applied when enabled."""
        graph = self.adg_builder.build(explanation)
        if resolve_conflicts is None:
            resolve_conflicts = self.config.enable_relation_conflicts
        if resolve_conflicts and graph.edges:
            conflicts = self.conflict_resolver.resolve(graph, self.adg_builder)
            self._num_relation_conflicts += len(conflicts)
        return graph

    def confidence(self, source: str, target: str, alignment: AlignmentSet) -> float:
        """Explanation confidence of a candidate pair under *alignment* (memoized).

        The batch-of-one case of :meth:`confidence_batch` — single and
        batched queries run through the same gather / explain / build path
        and produce bit-identical confidences.
        """
        return self.confidence_batch([(source, target)], alignment)[(source, target)]

    def confidence_batch(
        self,
        pairs: list[tuple[str, str]],
        alignment: AlignmentSet,
    ) -> dict[tuple[str, str], float]:
        """Explanation confidences of many candidate pairs under one *alignment*.

        The explanation — and therefore its ADG and confidence — depends on
        the alignment only through the matched-neighbour pairs of each
        ``(source, target)``, so results are memoized on the key
        ``(pair, matched-neighbour fingerprint)``.  Repair iterations that
        shuffle unrelated parts of the working alignment hit the cache
        instead of rebuilding the same explanation and ADG.  A model refit
        drops the cache wholesale; KG mutations evict only the entries in
        the mutation's relation-seeded blast radius when possible (see
        :meth:`_sync_confidence_cache`).

        Batching happens at three levels for the pairs that miss the
        cache: their matched-neighbour sets are gathered first, one
        :meth:`~repro.core.engine.ExplanationEngine.explain_batch` call
        embeds every new relation path through the engine's shared
        path-embedding store, and :meth:`~repro.core.adg.ADGBuilder.build_many`
        constructs the ADGs with node influences deduplicated across the
        batch.  Each step preserves bit-identity with the scalar path, so
        ``confidence_batch(pairs)[p] == confidence(*p)`` exactly.

        Each cache entry also remembers how many relation conflicts its
        ADG build resolved, and replays that count on every hit, so the
        per-run ``num_relation_conflicts`` statistic matches the uncached
        implementation (which re-counted on every query).  Duplicate pairs
        collapse: each unique pair is counted once per call.
        """
        token = self._token()
        if token != self._confidence_token:
            self._sync_confidence_cache(token)

        unique_pairs = list(dict.fromkeys(pairs))
        fingerprints: dict[tuple[str, str], list[tuple[str, str]]] = {}
        keys: dict[tuple[str, str], tuple] = {}
        for source, target in unique_pairs:
            neighbor_pairs = self.generator.matched_neighbors(source, target, alignment)
            fingerprints[(source, target)] = neighbor_pairs
            keys[(source, target)] = (source, target, tuple(neighbor_pairs))

        missing = [pair for pair in unique_pairs if keys[pair] not in self._confidence_cache]
        if missing:
            explanations = self.generator.engine.explain_batch(
                missing,
                alignment,
                neighbor_pairs_by_pair={pair: fingerprints[pair] for pair in missing},
            )
            graphs = self.adg_builder.build_many([explanations[pair] for pair in missing])
            resolve = self.config.enable_relation_conflicts
            for pair, graph in zip(missing, graphs):
                conflicts_before = self._num_relation_conflicts
                if resolve and graph.edges:
                    conflicts = self.conflict_resolver.resolve(graph, self.adg_builder)
                    self._num_relation_conflicts += len(conflicts)
                self._confidence_cache[keys[pair]] = (
                    graph.confidence,
                    self._num_relation_conflicts - conflicts_before,
                )

        missing_set = set(missing)
        results: dict[tuple[str, str], float] = {}
        for pair in unique_pairs:
            confidence, conflict_count = self._confidence_cache[keys[pair]]
            if pair not in missing_set:
                # Cache hits replay the conflict count their build contributed.
                self._num_relation_conflicts += conflict_count
            results[pair] = confidence
        return results

    def _sync_confidence_cache(self, token: tuple[int, int, int]) -> None:
        """Reconcile the confidence cache with a generation change.

        A model refit drops everything (including the similarity cache).
        A pure KG mutation tries the scoped path: when both graphs'
        mutation logs cover the span *and* the mined reasoning artefacts
        re-mine to the same values, only entries whose pair falls inside
        the relation-seeded blast radius are evicted — confidence depends
        on the global functionality statistics of mutated relations, so
        the ball is seeded with every endpoint of every triple carrying a
        mutated relation (see :meth:`KnowledgeGraph.blast_radius`).  If a
        log cannot cover the span or the mined artefacts shifted (they are
        global functions of the graphs), fall back to the wholesale drop.
        """
        old = self._confidence_token
        self._confidence_token = token
        if old is not None and token[2] != old[2]:
            self._similarity_cache.clear()
        if old is None or not self._confidence_cache:
            self._confidence_cache.clear()
            self._ensure_mined_fresh()
            return
        if token[2] != old[2]:
            self._confidence_cache.clear()
            self._ensure_mined_fresh()
            return
        records1 = self.dataset.kg1.mutations_since(old[0])
        records2 = self.dataset.kg2.mutations_since(old[1])
        if records1 is None or records2 is None or self._mined_artifacts_changed():
            self._confidence_cache.clear()
            return
        hops = self.config.explanation.max_hops
        blast1 = self.dataset.kg1.blast_radius(records1, hops, include_relations=True)
        blast2 = self.dataset.kg2.blast_radius(records2, hops, include_relations=True)
        for key in [k for k in self._confidence_cache if k[0] in blast1 or k[1] in blast2]:
            del self._confidence_cache[key]

    def similarity(self, source: str, target: str) -> float:
        """Cached model similarity of a pair (dropped on model refit)."""
        if self.model.embedding_version != self._similarity_version:
            self._similarity_cache.clear()
            self._similarity_version = self.model.embedding_version
        key = (source, target)
        if key not in self._similarity_cache:
            self._similarity_cache[key] = self.model.similarity(source, target)
        return self._similarity_cache[key]

    # ------------------------------------------------------------------
    # Full pipeline
    # ------------------------------------------------------------------
    def repair(self, predictions: AlignmentSet | None = None) -> RepairResult:
        """Repair the model's predictions and return the detailed outcome."""
        config = self.config
        self._num_relation_conflicts = 0
        gold = self.dataset.test_alignment
        if predictions is None:
            predictions = self.model.predict()
        source_entities = sorted(self.dataset.test_sources())
        target_entities = sorted(self.dataset.test_targets())
        similarity_matrix = self.model.similarity_matrix(source_entities, target_entities)

        beta = config.beta
        if beta is None:
            beta = low_confidence_threshold(config.adg.theta)

        working = predictions.copy()
        unaligned: set[str] = set()
        one_to_many_result: OneToManyRepairResult | None = None
        low_confidence_result: LowConfidenceRepairResult | None = None

        if config.enable_one_to_many:
            one_to_many_result = repair_one_to_many(
                working,
                similarity_matrix,
                source_entities,
                target_entities,
                confidence=self.confidence,
                seed_alignment=self.dataset.train_alignment,
                k=config.candidate_k,
                max_iterations=config.max_iterations,
            )
            working = one_to_many_result.alignment
            unaligned = set(one_to_many_result.unaligned_sources)

        if config.enable_low_confidence:
            repairer = LowConfidenceRepairer(
                dataset=self.dataset,
                confidence=self.confidence,
                similarity=self.similarity,
                seed_alignment=self.dataset.train_alignment,
                beta=beta,
                score_alpha=config.score_alpha,
                k=config.candidate_k,
                max_iterations=config.max_iterations,
                allow_takeover=config.enable_one_to_many,
            )
            low_confidence_result = repairer.repair(working, unaligned)
            working = low_confidence_result.alignment

        return RepairResult(
            base_alignment=predictions,
            repaired_alignment=working,
            base_accuracy=predictions.accuracy(gold),
            repaired_accuracy=working.accuracy(gold),
            num_relation_conflicts=self._num_relation_conflicts,
            one_to_many=one_to_many_result,
            low_confidence=low_confidence_result,
        )
