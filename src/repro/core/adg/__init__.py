"""Alignment dependency graphs: structure, weights, confidence (Section III-B)."""

from .builder import ADGBuilder, ADGConfig
from .confidence import (
    aggregate_by_type,
    low_confidence_threshold,
    node_confidence,
    sigmoid,
)
from .graph import ADGEdge, ADGNode, AlignmentDependencyGraph, EdgeType
from .weights import classify_edge, edge_weight, path_weight

__all__ = [
    "ADGBuilder",
    "ADGConfig",
    "ADGEdge",
    "ADGNode",
    "AlignmentDependencyGraph",
    "EdgeType",
    "aggregate_by_type",
    "classify_edge",
    "edge_weight",
    "low_confidence_threshold",
    "node_confidence",
    "path_weight",
    "sigmoid",
]
