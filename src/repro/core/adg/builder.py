"""ADG construction from explanations (Section III-B).

:meth:`ADGBuilder.build_many` is the batched construction path used by the
repair-confidence oracle and the serving layer: node influences are
computed once per unique entity pair across the whole batch (central pairs
and neighbour pairs repeat heavily between related explanations) and each
graph is then assembled exactly as the scalar :meth:`ADGBuilder.build`
would.  ``build()`` is the batch-of-one case — outputs are bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ...kg import EADataset
from ...models import EAModel
from ..explanation import Explanation
from .confidence import node_confidence
from .graph import ADGEdge, ADGNode, AlignmentDependencyGraph
from .weights import edge_weight


@dataclass
class ADGConfig:
    """Hyper-parameters of ADG construction and confidence computation.

    Attributes:
        alpha: down-weighting factor of moderately-influential edges (Eq. 7).
        weak_weight: fixed weight of weakly-influential edges.
        theta: strong-aggregate sufficiency threshold (Eq. 9).
        gamma: moderate-aggregate sufficiency threshold (Eq. 9).
        adaptive: use the adaptive aggregation of Eq. 9 (paper default)
            instead of the plain Eq. 8.
        max_edges: cap on the number of edges per ADG (the paper restricts
            the number of surrounding triples ``T_n`` to a constant level).
    """

    alpha: float = 0.5
    weak_weight: float = 0.05
    theta: float = 0.0
    gamma: float = 0.0
    adaptive: bool = True
    max_edges: int = 50


class ADGBuilder:
    """Builds alignment dependency graphs from explanations."""

    def __init__(
        self,
        model: EAModel,
        dataset: EADataset | None = None,
        config: ADGConfig | None = None,
    ) -> None:
        if not model.is_fitted:
            raise ValueError("the EA model must be fitted before building ADGs")
        self.model = model
        self.dataset = dataset or model.dataset
        if self.dataset is None:
            raise ValueError("a dataset is required (none attached to the model)")
        self.config = config or ADGConfig()

    # ------------------------------------------------------------------
    def build(self, explanation: Explanation) -> AlignmentDependencyGraph:
        """Construct the ADG of *explanation* and compute its confidence.

        The batch-of-one case of :meth:`build_many` — single and batched
        construction produce identical graphs.
        """
        return self.build_many([explanation])[0]

    def build_many(
        self, explanations: Sequence[Explanation]
    ) -> list[AlignmentDependencyGraph]:
        """Construct the ADGs of *explanations* in one pass.

        Node influences (the model similarity of an entity pair) are
        memoized across the batch: the central pair of one explanation is
        routinely a neighbour pair of another, and hot neighbour pairs
        recur in many ADGs, so the batch computes each unique similarity
        once.  Every influence comes from the same scalar
        :meth:`~repro.models.EAModel.similarity` call the unbatched builder
        made, so graphs — and therefore confidences — are bit-identical to
        sequential :meth:`build` calls.
        """
        config = self.config
        influences: dict[tuple[str, str], float] = {}

        def influence(source: str, target: str) -> float:
            key = (source, target)
            cached = influences.get(key)
            if cached is None:
                cached = self.model.similarity(source, target)
                influences[key] = cached
            return cached

        graphs: list[AlignmentDependencyGraph] = []
        for explanation in explanations:
            central = ADGNode(
                source=explanation.source,
                target=explanation.target,
                influence=influence(explanation.source, explanation.target),
                is_central=True,
            )
            graph = AlignmentDependencyGraph(central=central)

            neighbor_nodes: dict[tuple[str, str], ADGNode] = {}
            for match in explanation.matched_paths[: config.max_edges]:
                pair = match.neighbor_pair
                if pair not in neighbor_nodes:
                    neighbor_nodes[pair] = ADGNode(
                        source=pair[0],
                        target=pair[1],
                        influence=influence(pair[0], pair[1]),
                    )
                edge_type, weight = edge_weight(
                    match,
                    self.dataset.kg1,
                    self.dataset.kg2,
                    alpha=config.alpha,
                    weak_weight=config.weak_weight,
                )
                graph.edges.append(
                    ADGEdge(
                        neighbor=neighbor_nodes[pair],
                        matched_path=match,
                        edge_type=edge_type,
                        weight=weight,
                    )
                )
            self.refresh_confidence(graph)
            graphs.append(graph)
        return graphs

    def refresh_confidence(self, graph: AlignmentDependencyGraph) -> float:
        """Recompute and store the central-node confidence of *graph*.

        Called after construction and again whenever the repair module
        deletes neighbour nodes (relation-alignment conflict resolution).
        """
        graph.confidence = node_confidence(
            graph,
            theta=self.config.theta,
            gamma=self.config.gamma,
            adaptive=self.config.adaptive,
        )
        return graph.confidence
