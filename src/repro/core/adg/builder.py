"""ADG construction from explanations (Section III-B)."""

from __future__ import annotations

from dataclasses import dataclass

from ...kg import EADataset
from ...models import EAModel
from ..explanation import Explanation
from .confidence import node_confidence
from .graph import ADGEdge, ADGNode, AlignmentDependencyGraph
from .weights import edge_weight


@dataclass
class ADGConfig:
    """Hyper-parameters of ADG construction and confidence computation.

    Attributes:
        alpha: down-weighting factor of moderately-influential edges (Eq. 7).
        weak_weight: fixed weight of weakly-influential edges.
        theta: strong-aggregate sufficiency threshold (Eq. 9).
        gamma: moderate-aggregate sufficiency threshold (Eq. 9).
        adaptive: use the adaptive aggregation of Eq. 9 (paper default)
            instead of the plain Eq. 8.
        max_edges: cap on the number of edges per ADG (the paper restricts
            the number of surrounding triples ``T_n`` to a constant level).
    """

    alpha: float = 0.5
    weak_weight: float = 0.05
    theta: float = 0.0
    gamma: float = 0.0
    adaptive: bool = True
    max_edges: int = 50


class ADGBuilder:
    """Builds alignment dependency graphs from explanations."""

    def __init__(
        self,
        model: EAModel,
        dataset: EADataset | None = None,
        config: ADGConfig | None = None,
    ) -> None:
        if not model.is_fitted:
            raise ValueError("the EA model must be fitted before building ADGs")
        self.model = model
        self.dataset = dataset or model.dataset
        if self.dataset is None:
            raise ValueError("a dataset is required (none attached to the model)")
        self.config = config or ADGConfig()

    # ------------------------------------------------------------------
    def build(self, explanation: Explanation) -> AlignmentDependencyGraph:
        """Construct the ADG of *explanation* and compute its confidence."""
        config = self.config
        central = ADGNode(
            source=explanation.source,
            target=explanation.target,
            influence=self.model.similarity(explanation.source, explanation.target),
            is_central=True,
        )
        graph = AlignmentDependencyGraph(central=central)

        neighbor_nodes: dict[tuple[str, str], ADGNode] = {}
        for match in explanation.matched_paths[: config.max_edges]:
            pair = match.neighbor_pair
            if pair not in neighbor_nodes:
                neighbor_nodes[pair] = ADGNode(
                    source=pair[0],
                    target=pair[1],
                    influence=self.model.similarity(pair[0], pair[1]),
                )
            edge_type, weight = edge_weight(
                match,
                self.dataset.kg1,
                self.dataset.kg2,
                alpha=config.alpha,
                weak_weight=config.weak_weight,
            )
            graph.edges.append(
                ADGEdge(
                    neighbor=neighbor_nodes[pair],
                    matched_path=match,
                    edge_type=edge_type,
                    weight=weight,
                )
            )
        self.refresh_confidence(graph)
        return graph

    def refresh_confidence(self, graph: AlignmentDependencyGraph) -> float:
        """Recompute and store the central-node confidence of *graph*.

        Called after construction and again whenever the repair module
        deletes neighbour nodes (relation-alignment conflict resolution).
        """
        graph.confidence = node_confidence(
            graph,
            theta=self.config.theta,
            gamma=self.config.gamma,
            adaptive=self.config.adaptive,
        )
        return graph.confidence
