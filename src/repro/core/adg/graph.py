"""Alignment dependency graph (ADG) data structures (Section III-B).

An ADG abstracts an explanation: every matched entity pair becomes a node
(the explained pair is the *central* node), every matched relation-path
pair becomes an edge between the central node and a neighbour node.  Edges
are classified by the lengths of their two relation paths:

* **strongly influential** — both paths have length one;
* **moderately influential** — exactly one path has length one;
* **weakly influential** — both paths are longer than one.

Each edge carries a weight derived from relation functionality (Eq. 3-7)
and each node carries an *influence* (the embedding similarity of its two
entities).  The central node's *confidence* aggregates the neighbour
influences through the edge weights (Eq. 8-9).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..explanation import MatchedPath


class EdgeType(enum.Enum):
    """Influence category of an ADG edge."""

    STRONG = "strong"
    MODERATE = "moderate"
    WEAK = "weak"


@dataclass(frozen=True)
class ADGNode:
    """A node of the ADG: a matched entity pair and its influence.

    The influence is the embedding similarity between the two entities as
    reported by the EA model being explained.
    """

    source: str
    target: str
    influence: float
    is_central: bool = False

    @property
    def pair(self) -> tuple[str, str]:
        return (self.source, self.target)


@dataclass(frozen=True)
class ADGEdge:
    """An edge between the central node and a neighbour node."""

    neighbor: ADGNode
    matched_path: MatchedPath
    edge_type: EdgeType
    weight: float


@dataclass
class AlignmentDependencyGraph:
    """The ADG of one explained EA pair."""

    central: ADGNode
    edges: list[ADGEdge] = field(default_factory=list)
    #: the central node's confidence (filled in by the builder, Eq. 8-9)
    confidence: float = 0.0

    # ------------------------------------------------------------------
    @property
    def pair(self) -> tuple[str, str]:
        return self.central.pair

    @property
    def conf(self) -> float:
        """Alias matching the pseudo-code of Algorithms 1 and 2 (``g.conf``)."""
        return self.confidence

    def neighbors(self) -> list[ADGNode]:
        """Distinct neighbour nodes, in edge order."""
        seen: list[ADGNode] = []
        for edge in self.edges:
            if edge.neighbor not in seen:
                seen.append(edge.neighbor)
        return seen

    def edges_of_type(self, edge_type: EdgeType) -> list[ADGEdge]:
        return [edge for edge in self.edges if edge.edge_type == edge_type]

    @property
    def strong_edges(self) -> list[ADGEdge]:
        return self.edges_of_type(EdgeType.STRONG)

    @property
    def moderate_edges(self) -> list[ADGEdge]:
        return self.edges_of_type(EdgeType.MODERATE)

    @property
    def weak_edges(self) -> list[ADGEdge]:
        return self.edges_of_type(EdgeType.WEAK)

    def has_strong_edges(self) -> bool:
        """True if at least one strongly-influential edge exists.

        The low-confidence conflict detector (Section IV-C) uses the absence
        of strong edges as its primary signal for unreliable alignment.
        """
        return any(edge.edge_type is EdgeType.STRONG for edge in self.edges)

    def remove_neighbor(self, source: str, target: str) -> int:
        """Remove every edge whose neighbour node matches the given pair.

        Used by the relation-alignment conflict resolution, which deletes
        neighbour nodes inferred to be misaligned and then recomputes the
        confidence.  Returns the number of removed edges.
        """
        before = len(self.edges)
        self.edges = [
            edge
            for edge in self.edges
            if edge.neighbor.pair != (source, target)
        ]
        return before - len(self.edges)

    def summary(self) -> str:
        """One-line description used in logs and examples."""
        return (
            f"ADG({self.central.source} ≡ {self.central.target}: "
            f"{len(self.strong_edges)} strong / {len(self.moderate_edges)} moderate / "
            f"{len(self.weak_edges)} weak edges, confidence={self.confidence:.3f})"
        )
