"""ADG edge weight computation (Eq. 3-7, following PARIS-style functionality).

The weight of a matched path pair quantifies how strongly the neighbour
node constrains the central node:

* a direct path ``(e1, r, n)`` starting at the central entity is weighted
  by the *inverse functionality* of ``r`` (Eq. 3) — if ``r`` maps each head
  to a unique tail, knowing the tail pins down the head;
* a direct path ``(n, r, e1)`` ending at the central entity is weighted by
  the *functionality* of ``r`` (Eq. 4);
* a long (indirect) path is weighted by the product of its per-hop weights
  (Eq. 6);
* a strongly-influential edge takes the minimum of its two path weights
  (Eq. 5), a moderately-influential edge additionally scales by ``alpha``
  (Eq. 7), and weakly-influential edges get a small fixed weight.
"""

from __future__ import annotations

from ...kg import KnowledgeGraph
from ..explanation import MatchedPath, RelationPath
from .graph import EdgeType


def classify_edge(match: MatchedPath) -> EdgeType:
    """Edge type from the lengths of the two matched relation paths."""
    direct1 = match.path1.is_direct
    direct2 = match.path2.is_direct
    if direct1 and direct2:
        return EdgeType.STRONG
    if direct1 or direct2:
        return EdgeType.MODERATE
    return EdgeType.WEAK


def path_weight(path: RelationPath, kg: KnowledgeGraph) -> float:
    """Weight of a single relation path (Eq. 3, 4 and 6).

    Each hop contributes the inverse functionality of its relation when the
    walk enters the triple at its head, and the functionality when it
    enters at the tail; the hop weights are multiplied along the path.
    """
    weight = 1.0
    current = path.source
    for triple in path.triples:
        if triple.head == current:
            weight *= kg.inverse_functionality(triple.relation)
        else:
            weight *= kg.functionality(triple.relation)
        current = triple.other_entity(current)
    return weight


def edge_weight(
    match: MatchedPath,
    kg1: KnowledgeGraph,
    kg2: KnowledgeGraph,
    alpha: float = 0.5,
    weak_weight: float = 0.05,
) -> tuple[EdgeType, float]:
    """Weight of a matched path pair (Eq. 5 and 7, plus the weak-edge constant).

    Args:
        match: the matched relation-path pair.
        kg1 / kg2: the KGs the two paths come from (for functionality).
        alpha: down-weighting factor for moderately-influential edges.
        weak_weight: fixed weight assigned to weakly-influential edges.

    Returns:
        The edge type and its final weight.
    """
    edge_type = classify_edge(match)
    if edge_type is EdgeType.WEAK:
        return edge_type, weak_weight
    weight1 = path_weight(match.path1, kg1)
    weight2 = path_weight(match.path2, kg2)
    # Taking the smaller of the two weights guards against errors in the EA
    # results: if either path is only weakly identifying, the edge is too.
    weight = min(weight1, weight2)
    if edge_type is EdgeType.MODERATE:
        weight *= alpha
    return edge_type, weight
