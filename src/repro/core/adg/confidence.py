"""Node confidence computation for ADGs (Eq. 8-9).

The confidence of the central node is the likelihood that the explained EA
pair is valid given its explanation subgraph.  It aggregates the influence
of the neighbour nodes through the edge weights:

.. math::

    c = \\sigma\\Big(\\sum_i \\sum_j \\mathrm{weight}(l_{ij})\\, I(n_i)\\Big)

In practice strongly-influential edges carry most of the signal, so the
adaptive variant (Eq. 9) only adds the moderate / weak aggregates when the
stronger ones fall below the thresholds ``theta`` / ``gamma``:

.. math::

    c = \\sigma\\big(c_s + \\mathbb{1}(c_s < \\theta)\\, c_m
                         + \\mathbb{1}(c_m < \\gamma)\\, c_w\\big)
"""

from __future__ import annotations

import math

from .graph import AlignmentDependencyGraph, EdgeType


def sigmoid(x: float) -> float:
    """Numerically safe logistic function."""
    if x >= 0:
        return 1.0 / (1.0 + math.exp(-x))
    exp_x = math.exp(x)
    return exp_x / (1.0 + exp_x)


def aggregate_by_type(graph: AlignmentDependencyGraph, edge_type: EdgeType) -> float:
    """Sum of ``weight(edge) * influence(neighbour)`` over edges of one type."""
    return sum(
        edge.weight * edge.neighbor.influence
        for edge in graph.edges
        if edge.edge_type is edge_type
    )


def node_confidence(
    graph: AlignmentDependencyGraph,
    theta: float = 0.0,
    gamma: float = 0.0,
    adaptive: bool = True,
) -> float:
    """Confidence of the central node of *graph*.

    Args:
        graph: the ADG whose central-node confidence is computed.
        theta: threshold below which the strong-edge aggregate is considered
            insufficient and moderate edges are added (Eq. 9).
        gamma: threshold below which the moderate-edge aggregate is
            insufficient and weak edges are added.
        adaptive: when ``False``, all edge types are aggregated
            unconditionally (the plain Eq. 8); the adaptive variant is the
            paper's default.

    Returns:
        The sigmoid-squashed confidence in ``(0, 1)``.  A graph with no
        edges has confidence ``sigmoid(0) = 0.5``.
    """
    strong = aggregate_by_type(graph, EdgeType.STRONG)
    moderate = aggregate_by_type(graph, EdgeType.MODERATE)
    weak = aggregate_by_type(graph, EdgeType.WEAK)
    if adaptive:
        total = strong
        if strong < theta:
            total += moderate
        if moderate < gamma:
            total += weak
    else:
        total = strong + moderate + weak
    return sigmoid(total)


def low_confidence_threshold(theta: float = 0.0) -> float:
    """The threshold ``beta = sigmoid(theta)`` used to flag low-confidence pairs.

    Section IV-C treats the presence of strongly-influential edges as a
    binary signal and therefore sets ``theta = 0``, giving ``beta = 0.5``.
    """
    return sigmoid(theta)
