"""The paper's contribution: the ExEA framework.

Sub-packages:

* :mod:`repro.core.engine` — the vectorized batch explanation engine with
  shared embedding & neighborhood caches (see its docstring for the
  cache-invalidation contract).
* :mod:`repro.core.explanation` — semantic matching subgraph generation.
* :mod:`repro.core.adg` — alignment dependency graphs and confidence.
* :mod:`repro.core.repair` — conflict detection and EA repair.
* :mod:`repro.core.pipeline` — the :class:`ExEA` facade tying them together.
"""

from .adg import (
    ADGBuilder,
    ADGConfig,
    ADGEdge,
    ADGNode,
    AlignmentDependencyGraph,
    EdgeType,
    low_confidence_threshold,
    node_confidence,
)
from .engine import ExplanationEngine, PathEmbeddingStore
from .explanation import (
    Explanation,
    ExplanationConfig,
    ExplanationGenerator,
    MatchedPath,
    RelationPath,
)
from .pipeline import ExEA, ExEAConfig
from .repair import (
    EARepairer,
    RepairConfig,
    RepairResult,
    mine_not_same_as_rules,
    mine_relation_alignment,
)

__all__ = [
    "ADGBuilder",
    "ADGConfig",
    "ADGEdge",
    "ADGNode",
    "AlignmentDependencyGraph",
    "EARepairer",
    "EdgeType",
    "ExEA",
    "ExEAConfig",
    "Explanation",
    "ExplanationConfig",
    "ExplanationEngine",
    "ExplanationGenerator",
    "PathEmbeddingStore",
    "MatchedPath",
    "RelationPath",
    "RepairConfig",
    "RepairResult",
    "low_confidence_threshold",
    "mine_not_same_as_rules",
    "mine_relation_alignment",
    "node_confidence",
]
