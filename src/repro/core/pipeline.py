"""The ExEA facade: explanation generation, ADG construction, repair (Fig. 1).

:class:`ExEA` wires the three modules of the framework together behind a
single object, mirroring the pipeline of the paper's Fig. 1:

    input (model ``f``, predictions ``A_res``)
        → explanation generation (``E``)
        → ADG construction (``G``)
        → EA repair (``A*_res`` with explanations ``E*``)

It also exposes :meth:`verify`, the confidence-based EA verification used
in the comparison with LLMs (Table VI).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..kg import AlignmentSet, EADataset
from ..models import EAModel
from .adg import ADGBuilder, ADGConfig, AlignmentDependencyGraph, low_confidence_threshold
from .explanation import Explanation, ExplanationConfig, ExplanationGenerator
from .repair import EARepairer, RepairConfig, RepairResult


@dataclass
class ExEAConfig:
    """Top-level configuration of the ExEA framework."""

    explanation: ExplanationConfig = field(default_factory=ExplanationConfig)
    adg: ADGConfig = field(default_factory=ADGConfig)
    repair: RepairConfig = field(default_factory=RepairConfig)

    def __post_init__(self) -> None:
        # The repair pipeline shares the explanation / ADG settings unless
        # they were overridden explicitly.
        self.repair.explanation = self.explanation
        self.repair.adg = self.adg


class ExEA:
    """Explanation generation and repair for one fitted EA model."""

    def __init__(
        self,
        model: EAModel,
        dataset: EADataset | None = None,
        config: ExEAConfig | None = None,
    ) -> None:
        if not model.is_fitted:
            raise ValueError("ExEA requires a fitted EA model")
        self.model = model
        self.dataset = dataset or model.dataset
        if self.dataset is None:
            raise ValueError("a dataset is required (none attached to the model)")
        self.config = config or ExEAConfig()
        self.generator = ExplanationGenerator(model, self.dataset, self.config.explanation)
        self.adg_builder = ADGBuilder(model, self.dataset, self.config.adg)
        self.repairer = EARepairer(model, self.dataset, self.config.repair)
        self._reference_alignment: AlignmentSet | None = None

    # ------------------------------------------------------------------
    # Explanations and ADGs
    # ------------------------------------------------------------------
    def reference_alignment(self) -> AlignmentSet:
        """Model predictions plus seed alignment, cached."""
        if self._reference_alignment is None:
            self._reference_alignment = self.generator.reference_alignment()
        return self._reference_alignment

    def explain(
        self, source: str, target: str, alignment: AlignmentSet | None = None
    ) -> Explanation:
        """Explanation (semantic matching subgraph) for an EA pair."""
        return self.generator.explain(source, target, alignment or self.reference_alignment())

    def build_adg(self, explanation: Explanation) -> AlignmentDependencyGraph:
        """ADG of an explanation, with confidence computed."""
        return self.adg_builder.build(explanation)

    def confidence(
        self, source: str, target: str, alignment: AlignmentSet | None = None
    ) -> float:
        """Explanation confidence of an EA pair."""
        return self.build_adg(self.explain(source, target, alignment)).confidence

    def confidence_many(
        self,
        pairs: list[tuple[str, str]],
        alignment: AlignmentSet | None = None,
    ) -> dict[tuple[str, str], float]:
        """Explanation confidences of many EA pairs in one batched pass.

        Explanations are generated through the engine's shared batch path
        and the ADGs are constructed with :meth:`ADGBuilder.build_many`, so
        each value is bit-identical to the corresponding
        :meth:`confidence` call.
        """
        explanations = self.generator.explain_pairs(
            pairs, alignment or self.reference_alignment()
        )
        ordered = list(explanations)
        graphs = self.adg_builder.build_many([explanations[pair] for pair in ordered])
        return {pair: graph.confidence for pair, graph in zip(ordered, graphs)}

    def explain_predictions(
        self, pairs: list[tuple[str, str]] | None = None, limit: int | None = None
    ) -> dict[tuple[str, str], Explanation]:
        """Explanations for (a sample of) the model's predicted pairs."""
        if pairs is None:
            pairs = sorted(self.model.predict().pairs)
        if limit is not None:
            pairs = pairs[:limit]
        return self.generator.explain_pairs(pairs, self.reference_alignment())

    # ------------------------------------------------------------------
    # Verification and repair
    # ------------------------------------------------------------------
    def verify(
        self,
        pairs: list[tuple[str, str]],
        threshold: float | None = None,
    ) -> dict[tuple[str, str], bool]:
        """Judge whether each EA pair is correct based on explanation confidence.

        This is ExEA's entry in the EA-verification comparison (Table VI):
        a pair is accepted when its explanation confidence reaches the
        low-confidence threshold ``beta`` (``sigmoid(theta)`` by default).
        """
        if threshold is None:
            threshold = low_confidence_threshold(self.config.adg.theta)
        confidences = self.confidence_many(pairs, self.reference_alignment())
        return {pair: confidences[pair] > threshold for pair in confidences}

    def repair(self, predictions: AlignmentSet | None = None) -> RepairResult:
        """Run the full conflict-resolution pipeline on the model's predictions."""
        return self.repairer.repair(predictions)
