"""Evaluation metrics: fidelity, sparsity, alignment accuracy, verification."""

from ..embedding import alignment_accuracy
from .classification import VerificationMetrics, accuracy_of_verdicts, verification_metrics
from .fidelity import (
    ExplanationLike,
    fidelity_by_retraining,
    fidelity_fast,
    mean_sparsity,
)

__all__ = [
    "ExplanationLike",
    "VerificationMetrics",
    "accuracy_of_verdicts",
    "alignment_accuracy",
    "fidelity_by_retraining",
    "fidelity_fast",
    "mean_sparsity",
    "verification_metrics",
]
