"""Binary classification metrics for EA verification (Table VI)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping


@dataclass(frozen=True)
class VerificationMetrics:
    """Precision / recall / F1 of an EA verification method."""

    precision: float
    recall: float
    f1: float
    num_pairs: int

    def as_dict(self) -> dict[str, float]:
        return {"precision": self.precision, "recall": self.recall, "f1": self.f1}


def verification_metrics(
    verdicts: Mapping[tuple[str, str], bool],
    labels: Mapping[tuple[str, str], bool],
) -> VerificationMetrics:
    """Precision/recall/F1 of accept/reject verdicts against gold labels.

    The positive class is "the pair is a correct alignment"; precision is
    measured over accepted pairs and recall over truly correct pairs, as in
    the paper's verification experiment.
    """
    true_positive = false_positive = false_negative = 0
    evaluated = 0
    for pair, label in labels.items():
        if pair not in verdicts:
            continue
        evaluated += 1
        verdict = verdicts[pair]
        if verdict and label:
            true_positive += 1
        elif verdict and not label:
            false_positive += 1
        elif not verdict and label:
            false_negative += 1
    precision = true_positive / (true_positive + false_positive) if (true_positive + false_positive) else 0.0
    recall = true_positive / (true_positive + false_negative) if (true_positive + false_negative) else 0.0
    f1 = 2 * precision * recall / (precision + recall) if (precision + recall) else 0.0
    return VerificationMetrics(precision=precision, recall=recall, f1=f1, num_pairs=evaluated)


def accuracy_of_verdicts(
    verdicts: Mapping[tuple[str, str], bool],
    labels: Mapping[tuple[str, str], bool],
) -> float:
    """Plain accuracy of accept/reject verdicts."""
    evaluated = [pair for pair in labels if pair in verdicts]
    if not evaluated:
        return 0.0
    correct = sum(verdicts[pair] == labels[pair] for pair in evaluated)
    return correct / len(evaluated)
