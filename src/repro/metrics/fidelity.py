"""Fidelity of EA explanations (Section V-B.2).

The paper measures fidelity by sampling correctly predicted EA pairs,
removing the candidate triples *not* selected by the explanation from the
dataset, retraining the model, and counting how many of the sampled pairs
are still predicted correctly.

Two implementations are provided:

* :func:`fidelity_by_retraining` — the faithful protocol (retrain once on
  the reduced dataset);
* :func:`fidelity_fast` — a retraining-free approximation that re-infers
  the sampled pairs from the kept triples only, using the same entity
  reconstruction as the perturbation baselines.  The benchmark harness uses
  this by default so every table regenerates in minutes on a CPU, and uses
  the retraining protocol on a smaller sample as a cross-check.
"""

from __future__ import annotations

from typing import Mapping, Protocol, Sequence

import numpy as np

from ..baselines.perturbation import PerturbationEngine
from ..embedding import cosine
from ..kg import EADataset, Triple
from ..models import EAModel


class ExplanationLike(Protocol):
    """Anything exposing explanation triples and candidates (ExEA or baseline)."""

    source: str
    target: str

    @property
    def triples1(self) -> set[Triple]: ...

    @property
    def triples2(self) -> set[Triple]: ...

    def removed_triples(self) -> tuple[set[Triple], set[Triple]]: ...

    def sparsity(self) -> float: ...


def fidelity_fast(
    model: EAModel,
    dataset: EADataset,
    explanations: Mapping[tuple[str, str], ExplanationLike],
    candidate_targets: Sequence[str] | None = None,
) -> float:
    """Retraining-free fidelity: re-infer each pair from its kept triples.

    For every explained pair the source entity is re-embedded from the
    explanation triples only (translation / aggregation reconstruction);
    the prediction is preserved when the original target remains the most
    similar entity among the candidate targets.  The fraction of preserved
    predictions is the fidelity.
    """
    if not explanations:
        return 0.0
    if candidate_targets is None:
        candidate_targets = sorted(dataset.test_targets())
    target_matrix = model.entity_embeddings(candidate_targets)
    target_index = {entity: i for i, entity in enumerate(candidate_targets)}

    preserved = 0
    for (source, target), explanation in explanations.items():
        engine = PerturbationEngine(model, source, target)
        kept1 = frozenset(explanation.triples1)
        reconstructed = engine.reconstruct(source, kept1)
        if not np.any(reconstructed):
            continue
        norms = np.linalg.norm(target_matrix, axis=1) * np.linalg.norm(reconstructed)
        similarities = target_matrix @ reconstructed / np.maximum(norms, 1e-12)
        if target in target_index:
            best = int(np.argmax(similarities))
            if candidate_targets[best] == target:
                preserved += 1
        else:
            # The target is outside the candidate list; fall back to a
            # direct similarity check against the original embedding.
            if cosine(reconstructed, model.entity_embedding(target)) > 0:
                preserved += 1
    return preserved / len(explanations)


def fidelity_by_retraining(
    model: EAModel,
    dataset: EADataset,
    explanations: Mapping[tuple[str, str], ExplanationLike],
) -> float:
    """Faithful fidelity: remove non-explanation candidates, retrain, re-check.

    All sampled pairs' removals are applied to one copy of the dataset, a
    fresh model of the same class and configuration is trained on it, and
    fidelity is the fraction of sampled pairs still predicted correctly
    (the pair's target is the nearest neighbour of its source among the
    test targets).
    """
    if not explanations:
        return 0.0
    removed1: set[Triple] = set()
    removed2: set[Triple] = set()
    for explanation in explanations.values():
        extra1, extra2 = explanation.removed_triples()
        removed1 |= extra1
        removed2 |= extra2
    reduced = dataset.without_triples(kg1_removed=removed1, kg2_removed=removed2)
    retrained = type(model)(model.config).fit(reduced)

    sources = sorted({source for source, _ in explanations})
    targets = sorted(dataset.test_targets() | {target for _, target in explanations})
    similarity = retrained.similarity_matrix(sources, targets)
    source_index = {entity: i for i, entity in enumerate(sources)}
    preserved = 0
    for source, target in explanations:
        row = similarity[source_index[source]]
        best = targets[int(np.argmax(row))]
        preserved += best == target
    return preserved / len(explanations)


def mean_sparsity(
    explanations: Mapping[tuple[str, str], ExplanationLike]
) -> float:
    """Average sparsity (Eq. 13) over a collection of explanations."""
    if not explanations:
        return 0.0
    return float(np.mean([explanation.sparsity() for explanation in explanations.values()]))
