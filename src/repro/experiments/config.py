"""Experiment configuration shared by the benchmark harness and examples."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..models import TrainingConfig


@dataclass
class ExperimentScale:
    """Size knobs of one experiment run.

    The paper runs on 15k-pair datasets with GPU training; the defaults
    here are sized so that every table and figure regenerates on a laptop
    CPU in minutes while preserving the qualitative comparisons.  Crank
    ``dataset_scale`` / ``embedding_dim`` / sample sizes up for a closer
    (slower) run.
    """

    #: multiplier on the synthetic benchmark size (1.0 ≈ 400 world entities)
    dataset_scale: float = 0.5
    #: embedding dimensionality of the base models
    embedding_dim: int = 32
    #: number of correctly-predicted pairs sampled for explanation experiments
    #: (the paper samples 1,000)
    explanation_sample: int = 40
    #: number of correct / incorrect pairs sampled for verification (paper: 500 each)
    verification_sample: int = 40
    #: number of pairs sampled for the LLM explanation comparison (paper: 100)
    llm_sample: int = 30
    #: fraction of seed pairs corrupted in the noise experiments (paper: 750/4500)
    noise_fraction: float = 750 / 4500
    #: random seed shared by dataset generation, training and sampling
    seed: int = 1

    def training_config(self, seed_offset: int = 0) -> TrainingConfig:
        """Training configuration derived from this scale."""
        return TrainingConfig(dim=self.embedding_dim, seed=self.seed + seed_offset)


#: Quick scale used by the test-suite and smoke runs.
SMOKE_SCALE = ExperimentScale(
    dataset_scale=0.25,
    embedding_dim=24,
    explanation_sample=15,
    verification_sample=15,
    llm_sample=10,
)

#: Default scale used by the benchmark harness.
BENCHMARK_SCALE = ExperimentScale()


@dataclass
class ExperimentPlan:
    """Which datasets / models an experiment sweeps over."""

    datasets: tuple[str, ...] = ("ZH-EN", "JA-EN", "FR-EN", "DBP-WD", "DBP-YAGO")
    models: tuple[str, ...] = ("MTransE", "AlignE", "GCN-Align", "Dual-AMN")
    scale: ExperimentScale = field(default_factory=lambda: BENCHMARK_SCALE)
