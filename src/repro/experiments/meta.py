"""Run metadata stamped into every benchmark artifact.

A ``BENCH_*.json`` row without provenance is a number nobody can trust
six months later: was it measured before or after the dispatcher rework,
on which commit, when?  :func:`run_metadata` answers those questions with
three fields every artifact writer embeds under ``"meta"``:

* ``git_commit`` — the repository HEAD at measurement time (``unknown``
  outside a git checkout or without a ``git`` binary; artifacts must
  still be writable from an exported tarball).
* ``schema`` — :data:`ARTIFACT_SCHEMA_VERSION`, bumped when the shape of
  the benchmark rows changes incompatibly, so downstream tooling can
  refuse or adapt instead of misreading old files.
* ``timestamp`` — wall-clock UTC in ISO-8601.  ``REPRO_RUN_TIMESTAMP``
  overrides it for byte-reproducible artifact builds.
"""

from __future__ import annotations

import os
import subprocess
from datetime import datetime, timezone
from pathlib import Path

#: Version of the benchmark-artifact row shape; see module docstring.
ARTIFACT_SCHEMA_VERSION = 2


def git_commit() -> str:
    """The repository's HEAD commit hash, or ``"unknown"``.

    Never raises: benchmarks must run identically from a git checkout, an
    exported tarball, and a container without a ``git`` binary.
    """
    try:
        result = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    commit = result.stdout.strip()
    return commit if result.returncode == 0 and commit else "unknown"


def run_metadata() -> dict:
    """Provenance dict (``git_commit``/``schema``/``timestamp``) for artifacts."""
    timestamp = os.environ.get("REPRO_RUN_TIMESTAMP")
    if not timestamp:
        timestamp = datetime.now(timezone.utc).isoformat(timespec="seconds")
    return {
        "git_commit": git_commit(),
        "schema": ARTIFACT_SCHEMA_VERSION,
        "timestamp": timestamp,
    }


__all__ = ["ARTIFACT_SCHEMA_VERSION", "git_commit", "run_metadata"]
