"""Plain-text table formatting for the benchmark harness output.

The benchmark modules print one table per paper table/figure; these helpers
render aligned text tables from the result rows produced by
:mod:`repro.experiments.runner`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .runner import AblationRow, ExplanationRow, RepairRow, ServiceRow, VerificationRow


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = "") -> str:
    """Render an aligned text table."""
    string_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in string_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
    lines.append("  ".join("-" * width for width in widths))
    for row in string_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(value: float) -> str:
    return f"{value:.3f}"


def format_explanation_rows(rows: list[ExplanationRow], title: str = "") -> str:
    """Fidelity/sparsity table (layout of Tables I, II, V, VII)."""
    return format_table(
        ["Dataset", "Model", "Method", "Fidelity", "Sparsity", "Time (s)"],
        [
            (r.dataset, r.model, r.method, _fmt(r.fidelity), _fmt(r.sparsity), f"{r.seconds:.2f}")
            for r in rows
        ],
        title=title,
    )


def format_repair_rows(rows: list[RepairRow], title: str = "") -> str:
    """Base / ExEA / Δacc table (layout of Tables III and VIII)."""
    return format_table(
        ["Dataset", "Model", "Base", "ExEA", "Δacc"],
        [
            (r.dataset, r.model, _fmt(r.base_accuracy), _fmt(r.repaired_accuracy), f"{r.delta:+.3f}")
            for r in rows
        ],
        title=title,
    )


def format_ablation_rows(rows: list[AblationRow], title: str = "") -> str:
    """Ablation table (layout of Table IV); Fig. 6 plots the accuracy drops."""
    full_by_key = {
        (r.dataset, r.model): r.accuracy for r in rows if r.variant == "ExEA"
    }
    formatted = []
    for row in rows:
        drop = full_by_key.get((row.dataset, row.model), row.accuracy) - row.accuracy
        formatted.append((row.dataset, row.model, row.variant, _fmt(row.accuracy), f"{drop:+.3f}"))
    return format_table(
        ["Dataset", "Model", "Variant", "Accuracy", "Drop vs full"], formatted, title=title
    )


def format_verification_rows(rows: list[VerificationRow], title: str = "") -> str:
    """Precision/recall/F1 table (layout of Table VI)."""
    return format_table(
        ["Dataset", "Model", "Method", "Prec.", "Recall", "F1"],
        [
            (r.dataset, r.model, r.method, _fmt(r.precision), _fmt(r.recall), _fmt(r.f1))
            for r in rows
        ],
        title=title,
    )


def format_service_rows(rows: list[ServiceRow], title: str = "") -> str:
    """Serving-throughput table (service-backed runner path)."""
    return format_table(
        ["Dataset", "Model", "Requests", "Clients", "Shards", "Replicas", "Transport", "req/s", "Hit rate", "Batch occ.", "p50 ms", "p95 ms"],
        [
            (
                r.dataset,
                r.model,
                r.num_requests,
                r.num_clients,
                r.num_shards,
                r.num_replicas,
                r.transport,
                f"{r.requests_per_second:.0f}",
                _fmt(r.cache_hit_rate),
                f"{r.mean_batch_occupancy:.1f}",
                f"{r.p50_ms:.2f}",
                f"{r.p95_ms:.2f}",
            )
            for r in rows
        ],
        title=title,
    )


def format_timing_rows(rows: list[ExplanationRow], title: str = "") -> str:
    """Time-cost table (the series plotted in Fig. 4)."""
    return format_table(
        ["Dataset", "Model", "Method", "Time (s)"],
        [(r.dataset, r.model, r.method, f"{r.seconds:.2f}") for r in rows],
        title=title,
    )
