"""Experiment runners used by the benchmark harness (one per paper table/figure).

Every runner returns plain result rows (dataclasses) that the benchmark
modules print with :mod:`repro.experiments.tables`; the same runners back
the example scripts, so the paper's experiments can also be reproduced
programmatically.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, replace

from ..baselines import BASELINE_REGISTRY
from ..core import ExEA, ExEAConfig, ExplanationConfig, RepairConfig
from ..datasets import corrupt_seed_alignment, load_benchmark, replay_workload
from ..kg import EADataset
from ..llm import (
    ChatGPTMatchExplainer,
    ChatGPTPerturbExplainer,
    ExEAVerifier,
    FusedVerifier,
    LLMVerifier,
    SimulatedChatGPT,
    verdicts_to_bool,
)
from ..metrics import (
    fidelity_by_retraining,
    fidelity_fast,
    mean_sparsity,
    verification_metrics,
)
from ..models import EAModel, make_model
from ..service import (
    LocalShardCluster,
    ReplicatedLocalCluster,
    ServiceConfig,
    ShardedExplanationService,
    replay_cluster_concurrently,
    replay_concurrently,
    replay_remote_concurrently,
)
from .config import ExperimentScale

# ----------------------------------------------------------------------
# Result rows
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExplanationRow:
    """One row of Tables I / II / V / VII."""

    dataset: str
    model: str
    method: str
    fidelity: float
    sparsity: float
    seconds: float


@dataclass(frozen=True)
class RepairRow:
    """One cell-group of Tables III / VIII."""

    dataset: str
    model: str
    base_accuracy: float
    repaired_accuracy: float

    @property
    def delta(self) -> float:
        return self.repaired_accuracy - self.base_accuracy


@dataclass(frozen=True)
class AblationRow:
    """One cell of Table IV / Fig. 6."""

    dataset: str
    model: str
    variant: str
    accuracy: float


@dataclass(frozen=True)
class VerificationRow:
    """One row of Table VI."""

    dataset: str
    model: str
    method: str
    precision: float
    recall: float
    f1: float


@dataclass(frozen=True)
class ServiceRow:
    """One serving-throughput measurement (service-backed runner path)."""

    dataset: str
    model: str
    num_requests: int
    num_clients: int
    seconds: float
    requests_per_second: float
    cache_hit_rate: float
    mean_batch_occupancy: float
    p50_ms: float
    p95_ms: float
    num_shards: int = 1
    transport: str = "local"
    num_replicas: int = 1


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def prepare_dataset(name: str, scale: ExperimentScale, noisy_seed: bool = False) -> EADataset:
    """Generate a benchmark dataset (optionally with seed noise, Section V-E)."""
    dataset = load_benchmark(name, scale=scale.dataset_scale)
    if noisy_seed:
        dataset = corrupt_seed_alignment(dataset, fraction=scale.noise_fraction, seed=scale.seed)
    return dataset


def train_model(model_name: str, dataset: EADataset, scale: ExperimentScale) -> EAModel:
    """Train one base EA model at the experiment scale."""
    return make_model(model_name, scale.training_config()).fit(dataset)


def sample_correct_pairs(
    model: EAModel, dataset: EADataset, sample_size: int, seed: int = 0
) -> list[tuple[str, str]]:
    """Sample correctly-predicted test pairs (the fidelity protocol's population)."""
    predictions = model.predict()
    correct = sorted(pair for pair in predictions if pair in dataset.test_alignment.pairs)
    rng = random.Random(seed)
    if len(correct) > sample_size:
        correct = rng.sample(correct, sample_size)
    return sorted(correct)


def sample_verification_pairs(
    model: EAModel, dataset: EADataset, num_each: int, seed: int = 0
) -> dict[tuple[str, str], bool]:
    """Sample correct and incorrect predicted pairs with gold labels (Table VI)."""
    predictions = model.predict()
    gold = dataset.test_alignment.pairs
    correct = sorted(pair for pair in predictions if pair in gold)
    incorrect = sorted(pair for pair in predictions if pair not in gold)
    rng = random.Random(seed)
    if len(correct) > num_each:
        correct = rng.sample(correct, num_each)
    if len(incorrect) > num_each:
        incorrect = rng.sample(incorrect, num_each)
    labels = {pair: True for pair in correct}
    labels.update({pair: False for pair in incorrect})
    return labels


# ----------------------------------------------------------------------
# Explanation generation experiments (Tables I, II, V, VII; Fig. 4)
# ----------------------------------------------------------------------
def explanation_methods(
    model: EAModel,
    dataset: EADataset,
    max_hops: int = 1,
    include_baselines: bool = True,
    include_llm: bool = False,
    llm: SimulatedChatGPT | None = None,
) -> dict[str, object]:
    """Instantiate the explanation methods compared in the paper's tables."""
    methods: dict[str, object] = {}
    if include_baselines:
        for name, cls in BASELINE_REGISTRY.items():
            methods[name] = cls(model, dataset, max_hops=max_hops)
    if include_llm:
        shared_llm = llm or SimulatedChatGPT()
        methods["ChatGPT (perturb)"] = ChatGPTPerturbExplainer(model, dataset, max_hops, llm=shared_llm)
        methods["ChatGPT (match)"] = ChatGPTMatchExplainer(model, dataset, max_hops, llm=shared_llm)
    return methods


def run_explanation_experiment(
    model: EAModel,
    dataset: EADataset,
    scale: ExperimentScale,
    max_hops: int = 1,
    methods: dict[str, object] | None = None,
    fidelity_mode: str = "fast",
) -> list[ExplanationRow]:
    """Fidelity/sparsity of ExEA and the baselines on one model+dataset.

    ExEA runs first; each baseline then selects as many triples as ExEA did
    for the same pair, so the sparsity levels are comparable (the paper's
    protocol of tuning baseline explanation lengths to match ExEA).
    """
    pairs = sample_correct_pairs(model, dataset, scale.explanation_sample, seed=scale.seed)
    if not pairs:
        return []
    exea = ExEA(model, dataset, ExEAConfig(explanation=ExplanationConfig(max_hops=max_hops)))

    rows: list[ExplanationRow] = []
    start = time.perf_counter()
    exea_explanations = exea.explain_predictions(pairs)
    exea_seconds = time.perf_counter() - start
    budget = {
        pair: max(len(explanation.triples), 1)
        for pair, explanation in exea_explanations.items()
    }

    def evaluate(name: str, explanations, seconds: float) -> None:
        if fidelity_mode == "retrain":
            fidelity = fidelity_by_retraining(model, dataset, explanations)
        else:
            fidelity = fidelity_fast(model, dataset, explanations)
        rows.append(
            ExplanationRow(
                dataset=dataset.name,
                model=model.name,
                method=name,
                fidelity=fidelity,
                sparsity=mean_sparsity(explanations),
                seconds=seconds,
            )
        )

    if methods is None:
        methods = explanation_methods(model, dataset, max_hops=max_hops)
    for name, explainer in methods.items():
        start = time.perf_counter()
        explanations = {
            pair: explainer.explain(pair[0], pair[1], budget[pair]) for pair in pairs
        }
        evaluate(name, explanations, time.perf_counter() - start)
    evaluate("ExEA", exea_explanations, exea_seconds)
    return rows


# ----------------------------------------------------------------------
# Repair experiments (Tables III, IV, VIII; Fig. 6)
# ----------------------------------------------------------------------
def run_repair_experiment(
    model: EAModel, dataset: EADataset, repair_config: RepairConfig | None = None
) -> RepairRow:
    """Base vs repaired accuracy of one model on one dataset (Table III)."""
    exea = ExEA(model, dataset, ExEAConfig(repair=repair_config or RepairConfig()))
    result = exea.repair()
    return RepairRow(
        dataset=dataset.name,
        model=model.name,
        base_accuracy=result.base_accuracy,
        repaired_accuracy=result.repaired_accuracy,
    )


#: The ablation variants of Table IV / Fig. 6, in reporting order.
ABLATION_VARIANTS: dict[str, dict[str, bool]] = {
    "ExEA": {},
    "ExEA w/o cr1": {"enable_relation_conflicts": False},
    "ExEA w/o cr2": {"enable_one_to_many": False},
    "ExEA w/o cr3": {"enable_low_confidence": False},
}


def run_ablation_experiment(model: EAModel, dataset: EADataset) -> list[AblationRow]:
    """Repair accuracy with each conflict-resolution stage removed in turn."""
    rows: list[AblationRow] = []
    for variant, overrides in ABLATION_VARIANTS.items():
        config = RepairConfig(**overrides)
        result = ExEA(model, dataset, ExEAConfig(repair=config)).repair()
        rows.append(
            AblationRow(
                dataset=dataset.name,
                model=model.name,
                variant=variant,
                accuracy=result.repaired_accuracy,
            )
        )
    return rows


# ----------------------------------------------------------------------
# Service-backed serving experiment (explanation-as-a-service layer)
# ----------------------------------------------------------------------
def run_service_experiment(
    model: EAModel,
    dataset: EADataset,
    scale: ExperimentScale,
    num_requests: int | None = None,
    num_clients: int = 4,
    skew: float = 1.0,
    service_config=None,
    num_shards: int | None = None,
    transport: str = "local",
    num_replicas: int = 2,
) -> ServiceRow:
    """Replay skewed explain traffic through the (sharded) explanation service.

    Samples the fidelity protocol's pair population, builds a
    deterministic Zipf replay over it and drives the sharded service
    front door with *num_clients* concurrent synchronous clients — the
    serving analogue of :func:`run_explanation_experiment`.  Results are
    bit-identical to direct engine calls at any shard count (covered by
    the service test suite); this runner measures the serving side:
    throughput, overall cache hit rate, batch occupancy and latency
    percentiles.  *num_shards* overrides the config's shard count; the
    reported figures merge every shard's stats.

    *transport* selects the deployment axis: ``"local"`` drives the
    in-process :class:`ShardedExplanationService`; ``"remote"`` spawns
    one real server subprocess per shard
    (:class:`~repro.service.LocalShardCluster`, fed a pickled snapshot of
    this exact model) and replays over the wire; ``"cluster"`` spawns
    *num_replicas* server subprocesses per shard behind the health-checked
    control plane (:class:`~repro.service.ReplicatedLocalCluster`) and
    replays with load-aware replica routing — same workload, same
    CRC-32 partition, bit-identical results, so the rows isolate the
    transport and replication costs.
    """
    if transport not in ("local", "remote", "cluster"):
        raise ValueError(
            f'transport must be "local", "remote" or "cluster", got {transport!r}'
        )
    pairs = sample_correct_pairs(model, dataset, scale.explanation_sample, seed=scale.seed)
    if num_requests is None:
        num_requests = 10 * len(pairs)
    workload = replay_workload(pairs, num_requests, seed=scale.seed, skew=skew)

    config = service_config or ServiceConfig()
    if num_shards is not None and num_shards != config.num_shards:
        config = replace(config, num_shards=num_shards)

    if transport == "cluster":
        with ReplicatedLocalCluster(
            model,
            dataset,
            num_shards=config.num_shards,
            num_replicas=num_replicas,
            service_config=config,
        ) as cluster:
            seconds = replay_cluster_concurrently(cluster.client, workload, num_clients)
            stats = cluster.client.stats_snapshot()["overall"]
    elif transport == "remote":
        with LocalShardCluster(
            model, dataset, num_shards=config.num_shards, service_config=config
        ) as cluster:
            seconds = replay_remote_concurrently(cluster.client, workload, num_clients)
            stats = cluster.client.stats_snapshot()["overall"]
    else:
        with ShardedExplanationService(model, dataset, config) as service:
            seconds = replay_concurrently(service, workload, num_clients)
        stats = service.stats_snapshot()["overall"]
    return ServiceRow(
        dataset=dataset.name,
        model=model.name,
        num_requests=len(workload),
        num_clients=num_clients,
        seconds=seconds,
        requests_per_second=len(workload) / seconds if seconds > 0 else 0.0,
        cache_hit_rate=stats["cache_hit_rate"],
        mean_batch_occupancy=stats["mean_batch_occupancy"],
        p50_ms=stats["p50_ms"],
        p95_ms=stats["p95_ms"],
        num_shards=config.num_shards,
        transport=transport,
        num_replicas=num_replicas if transport == "cluster" else 1,
    )


# ----------------------------------------------------------------------
# LLM comparison experiments (Tables V and VI)
# ----------------------------------------------------------------------
def run_llm_explanation_experiment(
    model: EAModel, dataset: EADataset, scale: ExperimentScale
) -> list[ExplanationRow]:
    """ExEA vs ChatGPT (perturb) vs ChatGPT (match) on explanation generation."""
    reduced = ExperimentScale(**{**scale.__dict__, "explanation_sample": scale.llm_sample})
    methods = explanation_methods(
        model, dataset, include_baselines=False, include_llm=True,
        llm=SimulatedChatGPT(seed=scale.seed),
    )
    return run_explanation_experiment(model, dataset, reduced, methods=methods)


def run_verification_experiment(
    model: EAModel, dataset: EADataset, scale: ExperimentScale
) -> list[VerificationRow]:
    """ChatGPT vs ExEA vs their fusion on EA verification (Table VI)."""
    labels = sample_verification_pairs(model, dataset, scale.verification_sample, seed=scale.seed)
    pairs = sorted(labels)
    exea = ExEA(model, dataset)
    llm_verifier = LLMVerifier(dataset, SimulatedChatGPT(seed=scale.seed))
    exea_verifier = ExEAVerifier(exea)
    fused_verifier = FusedVerifier(llm_verifier, exea_verifier)
    rows: list[VerificationRow] = []
    for verifier in (llm_verifier, exea_verifier, fused_verifier):
        verdicts = verdicts_to_bool(verifier.verify_pairs(pairs))
        metrics = verification_metrics(verdicts, labels)
        rows.append(
            VerificationRow(
                dataset=dataset.name,
                model=model.name,
                method=verifier.name,
                precision=metrics.precision,
                recall=metrics.recall,
                f1=metrics.f1,
            )
        )
    return rows
