"""Common interface of the explanation baselines (Section V-B.1).

All baselines (EALime, EAShapley, Anchor, LORE) treat an individual
relation triple as a feature and select a subset of the candidate triples
as the explanation.  Their output, :class:`BaselineExplanation`, exposes
the same triple/candidate/sparsity interface as the ExEA
:class:`~repro.core.Explanation` so the fidelity and sparsity metrics apply
to both uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..kg import EADataset, Triple
from ..models import EAModel


@dataclass
class BaselineExplanation:
    """Triples selected by a baseline explainer for one EA pair."""

    source: str
    target: str
    selected_triples1: set[Triple] = field(default_factory=set)
    selected_triples2: set[Triple] = field(default_factory=set)
    candidate_triples1: set[Triple] = field(default_factory=set)
    candidate_triples2: set[Triple] = field(default_factory=set)
    #: per-triple importance scores (optional, for inspection)
    scores: dict[Triple, float] = field(default_factory=dict)

    @property
    def pair(self) -> tuple[str, str]:
        return (self.source, self.target)

    @property
    def triples1(self) -> set[Triple]:
        return self.selected_triples1

    @property
    def triples2(self) -> set[Triple]:
        return self.selected_triples2

    @property
    def triples(self) -> set[Triple]:
        return self.selected_triples1 | self.selected_triples2

    @property
    def is_empty(self) -> bool:
        return not self.triples

    def num_candidates(self) -> int:
        return len(self.candidate_triples1 | self.candidate_triples2)

    def sparsity(self) -> float:
        """Sparsity ``1 - |T'| / |T|`` (Eq. 13)."""
        total = self.num_candidates()
        if total == 0:
            return 0.0
        return 1.0 - len(self.triples) / total

    def removed_triples(self) -> tuple[set[Triple], set[Triple]]:
        """Candidate triples not selected, per KG (for the fidelity protocol)."""
        removed1 = {t for t in self.candidate_triples1 if t not in self.selected_triples1}
        removed2 = {t for t in self.candidate_triples2 if t not in self.selected_triples2}
        return removed1, removed2


class BaselineExplainer:
    """Base class for explanation baselines.

    Subclasses implement :meth:`rank_triples`, returning an importance
    score per candidate triple; :meth:`explain` then selects the
    ``num_triples`` highest-scoring triples (the experiment harness chooses
    ``num_triples`` so that the sparsity matches ExEA's, as in the paper).
    """

    name: str = "Baseline"

    def __init__(self, model: EAModel, dataset: EADataset | None = None, max_hops: int = 1) -> None:
        if not model.is_fitted:
            raise ValueError("the EA model must be fitted before explaining its results")
        self.model = model
        self.dataset = dataset or model.dataset
        if self.dataset is None:
            raise ValueError("a dataset is required (none attached to the model)")
        self.max_hops = max_hops

    # ------------------------------------------------------------------
    def candidate_triples(self, source: str, target: str) -> tuple[set[Triple], set[Triple]]:
        """The candidate sets ``T_e1`` and ``T_e2`` within ``max_hops`` hops."""
        return (
            self.dataset.kg1.triples_within_hops(source, self.max_hops),
            self.dataset.kg2.triples_within_hops(target, self.max_hops),
        )

    def rank_triples(
        self,
        source: str,
        target: str,
        candidates1: set[Triple],
        candidates2: set[Triple],
    ) -> dict[Triple, float]:
        """Importance score of every candidate triple (higher = more important)."""
        raise NotImplementedError

    def explain(self, source: str, target: str, num_triples: int) -> BaselineExplanation:
        """Select the ``num_triples`` most important candidate triples."""
        candidates1, candidates2 = self.candidate_triples(source, target)
        scores = self.rank_triples(source, target, candidates1, candidates2)
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        selected = {triple for triple, _ in ranked[: max(num_triples, 0)]}
        return BaselineExplanation(
            source=source,
            target=target,
            selected_triples1={t for t in selected if t in candidates1},
            selected_triples2={t for t in selected if t in candidates2},
            candidate_triples1=candidates1,
            candidate_triples2=candidates2,
            scores=scores,
        )
