"""Explanation baselines adapted to entity alignment (Section V-B.1)."""

from .anchor import Anchor
from .base import BaselineExplainer, BaselineExplanation
from .ealime import EALime
from .eashapley import EAShapley, shapley_kernel_weight
from .lore import LORE
from .perturbation import (
    PerturbationEngine,
    PerturbationSample,
    masks_to_samples,
    random_masks,
    weighted_linear_regression,
)

#: Baselines in the order the paper's tables report them.
BASELINE_REGISTRY: dict[str, type[BaselineExplainer]] = {
    "EALime": EALime,
    "EAShapley": EAShapley,
    "Anchor": Anchor,
    "LORE": LORE,
}

__all__ = [
    "Anchor",
    "BASELINE_REGISTRY",
    "BaselineExplainer",
    "BaselineExplanation",
    "EALime",
    "EAShapley",
    "LORE",
    "PerturbationEngine",
    "PerturbationSample",
    "masks_to_samples",
    "random_masks",
    "shapley_kernel_weight",
    "weighted_linear_regression",
]
