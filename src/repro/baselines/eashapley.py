"""EAShapley: Shapley-value explanations adapted to EA (Section V-B.1).

Each candidate triple is a player in a cooperative game whose value
function is the EA model's perturbed similarity (via Eq. 10).  Two
estimators are provided, matching the paper:

* **Monte Carlo permutation sampling** (used for first-order candidates):
  the marginal contribution of each triple is averaged over random
  orderings;
* **KernelSHAP** (used when second-order candidates make Monte Carlo too
  expensive): the same weighted-linear-regression machinery as EALime but
  with the Shapley kernel (Eq. 12).
"""

from __future__ import annotations

import numpy as np

from ..kg import Triple
from .base import BaselineExplainer
from .perturbation import (
    PerturbationEngine,
    PerturbationSample,
    masks_to_samples,
    random_masks,
    weighted_linear_regression,
)


def shapley_kernel_weight(num_features: int, subset_size: int) -> float:
    """The KernelSHAP weight of a coalition of the given size (Eq. 12).

    The weight is infinite for the empty and full coalitions; following the
    usual implementation those are given a large finite weight instead.
    """
    if subset_size == 0 or subset_size == num_features:
        return 1e6
    from math import comb

    return (num_features - 1) / (
        comb(num_features, subset_size) * subset_size * (num_features - subset_size)
    )


class EAShapley(BaselineExplainer):
    """Shapley-value triple importances for EA pairs."""

    name = "EAShapley"

    def __init__(
        self,
        model,
        dataset=None,
        max_hops: int = 1,
        num_samples: int = 64,
        method: str = "auto",
        seed: int = 0,
    ) -> None:
        super().__init__(model, dataset, max_hops)
        self.num_samples = num_samples
        if method not in ("auto", "monte_carlo", "kernel"):
            raise ValueError("method must be 'auto', 'monte_carlo' or 'kernel'")
        self.method = method
        self.seed = seed

    # ------------------------------------------------------------------
    def rank_triples(self, source, target, candidates1, candidates2) -> dict[Triple, float]:
        ordered1 = sorted(candidates1)
        ordered2 = sorted(candidates2)
        if not ordered1 and not ordered2:
            return {}
        method = self.method
        if method == "auto":
            # Monte Carlo for first-order candidate sets, KernelSHAP beyond
            # (the paper's choice for second-order experiments).
            method = "monte_carlo" if self.max_hops <= 1 else "kernel"
        engine = PerturbationEngine(self.model, source, target)
        if method == "monte_carlo":
            return self._monte_carlo(engine, ordered1, ordered2)
        return self._kernel_shap(engine, ordered1, ordered2)

    # ------------------------------------------------------------------
    def _monte_carlo(
        self, engine: PerturbationEngine, ordered1: list[Triple], ordered2: list[Triple]
    ) -> dict[Triple, float]:
        rng = np.random.default_rng(self.seed)
        all_triples = ordered1 + ordered2
        split = len(ordered1)
        contributions = {triple: 0.0 for triple in all_triples}
        num_permutations = max(1, self.num_samples // max(len(all_triples), 1))
        for _ in range(num_permutations):
            order = rng.permutation(len(all_triples))
            kept1: set[Triple] = set()
            kept2: set[Triple] = set()
            previous = engine.prediction_value(
                PerturbationSample(frozenset(kept1), frozenset(kept2))
            )
            for index in order:
                triple = all_triples[index]
                if index < split:
                    kept1.add(triple)
                else:
                    kept2.add(triple)
                current = engine.prediction_value(
                    PerturbationSample(frozenset(kept1), frozenset(kept2))
                )
                contributions[triple] += current - previous
                previous = current
        return {triple: value / num_permutations for triple, value in contributions.items()}

    def _kernel_shap(
        self, engine: PerturbationEngine, ordered1: list[Triple], ordered2: list[Triple]
    ) -> dict[Triple, float]:
        rng = np.random.default_rng(self.seed)
        num_features = len(ordered1) + len(ordered2)
        masks = random_masks(num_features, self.num_samples, rng)
        samples = masks_to_samples(masks, ordered1, ordered2)
        values = np.array([engine.prediction_value(sample) for sample in samples])
        weights = np.array(
            [shapley_kernel_weight(num_features, int(mask.sum())) for mask in masks]
        )
        coefficients = weighted_linear_regression(masks.astype(float), values, weights)
        return {
            triple: float(coefficient)
            for triple, coefficient in zip(ordered1 + ordered2, coefficients)
        }
