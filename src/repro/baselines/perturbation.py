"""Shared perturbation machinery for the explanation baselines.

EALime, EAShapley, Anchor and LORE all need to query the EA model on
*perturbed* inputs: subsets of the candidate triples around the pair being
explained.  Retraining the model per perturbation is infeasible, so —
following the paper's treatment of TransE-based models (Eq. 10) — the
perturbed representation of a central entity is reconstructed from the
kept triples and the frozen entity/relation embeddings:

* translation reconstruction (models with relation embeddings):
  ``e ≈ mean over kept (e, r, e') of (e' - r)`` and
  ``e ≈ mean over kept (e', r, e) of (e' + r)``;
* aggregation reconstruction (GCN-style models without relation
  embeddings): ``e ≈ mean of the kept neighbours' embeddings``.

The prediction value of a perturbed sample is the cosine similarity of the
two reconstructed central entities, and the LIME similarity kernel
(Eq. 11) compares the reconstructions against the original embeddings.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..embedding import cosine
from ..kg import Triple
from ..models import EAModel


@dataclass(frozen=True)
class PerturbationSample:
    """One perturbed input: the candidate triples kept on each side."""

    kept1: frozenset[Triple]
    kept2: frozenset[Triple]


class PerturbationEngine:
    """Evaluates the EA model on perturbed candidate-triple subsets."""

    def __init__(self, model: EAModel, source: str, target: str) -> None:
        self.model = model
        self.source = source
        self.target = target
        self._original1 = model.entity_embedding(source)
        self._original2 = model.entity_embedding(target)

    # ------------------------------------------------------------------
    # Entity reconstruction
    # ------------------------------------------------------------------
    def reconstruct(self, entity: str, kept: frozenset[Triple] | set[Triple]) -> np.ndarray:
        """Representation of *entity* using only the kept incident triples.

        Triples not incident to *entity* (e.g. second-order candidates) do
        not contribute directly; when no incident triple is kept the zero
        vector is returned, signalling that the entity lost all evidence.
        """
        model = self.model
        contributions: list[np.ndarray] = []
        for triple in kept:
            if triple.head == entity:
                other = model.entity_embedding(triple.tail)
                if model.learns_relation_embeddings:
                    contributions.append(other - model.relation_embedding(triple.relation))
                else:
                    contributions.append(other)
            elif triple.tail == entity:
                other = model.entity_embedding(triple.head)
                if model.learns_relation_embeddings:
                    contributions.append(other + model.relation_embedding(triple.relation))
                else:
                    contributions.append(other)
        if not contributions:
            return np.zeros_like(self._original1)
        return np.mean(contributions, axis=0)

    # ------------------------------------------------------------------
    # Model queries on perturbed samples
    # ------------------------------------------------------------------
    def prediction_value(self, sample: PerturbationSample) -> float:
        """Similarity of the pair under the perturbed candidate sets."""
        reconstructed1 = self.reconstruct(self.source, sample.kept1)
        reconstructed2 = self.reconstruct(self.target, sample.kept2)
        return cosine(reconstructed1, reconstructed2)

    def lime_kernel(self, sample: PerturbationSample) -> float:
        """LIME similarity kernel π_x (Eq. 11): closeness to the original sample."""
        reconstructed1 = self.reconstruct(self.source, sample.kept1)
        reconstructed2 = self.reconstruct(self.target, sample.kept2)
        return 0.5 * (
            cosine(reconstructed1, self._original1) + cosine(reconstructed2, self._original2)
        )

    def original_value(self) -> float:
        """Similarity of the pair under the original (unperturbed) model."""
        return cosine(self._original1, self._original2)


def random_masks(
    num_features: int, num_samples: int, rng: np.random.Generator, keep_probability: float = 0.5
) -> np.ndarray:
    """Random binary masks over the candidate triples (1 = keep the triple)."""
    if num_features == 0:
        return np.zeros((num_samples, 0), dtype=bool)
    masks = rng.random((num_samples, num_features)) < keep_probability
    # Guarantee the all-ones mask is present: it anchors the regression at
    # the original prediction.
    masks[0] = True
    return masks


def masks_to_samples(
    masks: np.ndarray, candidates1: list[Triple], candidates2: list[Triple]
) -> list[PerturbationSample]:
    """Convert binary masks (columns = candidates1 + candidates2) to samples."""
    split = len(candidates1)
    samples: list[PerturbationSample] = []
    for mask in masks:
        kept1 = frozenset(t for t, keep in zip(candidates1, mask[:split]) if keep)
        kept2 = frozenset(t for t, keep in zip(candidates2, mask[split:]) if keep)
        samples.append(PerturbationSample(kept1=kept1, kept2=kept2))
    return samples


def weighted_linear_regression(
    features: np.ndarray,
    targets: np.ndarray,
    weights: np.ndarray,
    l2: float = 1e-3,
) -> np.ndarray:
    """Ridge-regularised weighted least squares; returns the coefficients.

    Used by both EALime (with the LIME kernel weights) and the
    KernelSHAP-style variant of EAShapley (with the Shapley kernel).
    """
    if features.size == 0:
        return np.zeros(features.shape[1] if features.ndim > 1 else 0)
    weights = np.clip(weights, 0.0, None)
    design = np.hstack([features, np.ones((features.shape[0], 1))])
    weighted_design = design * weights[:, None]
    gram = weighted_design.T @ design + l2 * np.eye(design.shape[1])
    moment = weighted_design.T @ targets
    coefficients = np.linalg.solve(gram, moment)
    return coefficients[:-1]
