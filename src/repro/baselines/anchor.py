"""Anchor [23] adapted to entity alignment (Section V-B.1).

EA is cast as a binary classification problem: a pair is positive when the
similarity of its (reconstructed) embeddings exceeds a threshold.  An
*anchor* is a subset of candidate triples such that keeping those triples
(and randomising the rest) preserves the positive prediction with high
precision.  The anchor is grown greedily: at each step the triple whose
addition raises the estimated precision the most is added, until the
precision target is met or all triples are used.  Triples in the anchor
receive importance proportional to how early they were added.
"""

from __future__ import annotations

import numpy as np

from ..kg import Triple
from .base import BaselineExplainer
from .perturbation import PerturbationEngine, PerturbationSample


class Anchor(BaselineExplainer):
    """Greedy anchor search over candidate triples."""

    name = "Anchor"

    def __init__(
        self,
        model,
        dataset=None,
        max_hops: int = 1,
        num_samples: int = 24,
        precision_target: float = 0.95,
        similarity_threshold: float | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__(model, dataset, max_hops)
        self.num_samples = num_samples
        self.precision_target = precision_target
        self.similarity_threshold = similarity_threshold
        self.seed = seed

    # ------------------------------------------------------------------
    def _precision(
        self,
        engine: PerturbationEngine,
        anchor: set[Triple],
        free: list[Triple],
        split_lookup: dict[Triple, bool],
        threshold: float,
        rng: np.random.Generator,
    ) -> float:
        """Fraction of random completions of *anchor* that stay positive."""
        positives = 0
        for _ in range(self.num_samples):
            kept1: set[Triple] = set()
            kept2: set[Triple] = set()
            for triple in anchor:
                (kept1 if split_lookup[triple] else kept2).add(triple)
            for triple in free:
                if rng.random() < 0.5:
                    (kept1 if split_lookup[triple] else kept2).add(triple)
            value = engine.prediction_value(PerturbationSample(frozenset(kept1), frozenset(kept2)))
            positives += value >= threshold
        return positives / max(self.num_samples, 1)

    def rank_triples(self, source, target, candidates1, candidates2) -> dict[Triple, float]:
        ordered1 = sorted(candidates1)
        ordered2 = sorted(candidates2)
        all_triples = ordered1 + ordered2
        if not all_triples:
            return {}
        rng = np.random.default_rng(self.seed)
        engine = PerturbationEngine(self.model, source, target)
        threshold = self.similarity_threshold
        if threshold is None:
            # Positive class: retain most of the original similarity.
            threshold = 0.8 * engine.original_value()
        split_lookup = {triple: triple in candidates1 for triple in all_triples}

        anchor: set[Triple] = set()
        remaining = list(all_triples)
        scores: dict[Triple, float] = {triple: 0.0 for triple in all_triples}
        rank_bonus = len(all_triples)
        while remaining:
            best_triple = None
            best_precision = -1.0
            for triple in remaining:
                precision = self._precision(
                    engine, anchor | {triple}, [t for t in remaining if t != triple],
                    split_lookup, threshold, rng,
                )
                if precision > best_precision:
                    best_precision = precision
                    best_triple = triple
            assert best_triple is not None
            anchor.add(best_triple)
            remaining.remove(best_triple)
            scores[best_triple] = float(rank_bonus)
            rank_bonus -= 1
            if best_precision >= self.precision_target:
                break
        return scores
