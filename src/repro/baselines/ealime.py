"""EALime: LIME [16] adapted to entity alignment (Section V-B.1).

Each candidate triple is a binary feature; perturbed samples keep a random
subset of triples; the EA model's response is the similarity of the
reconstructed pair (Eq. 10); a weighted linear model (weights from the
similarity kernel of Eq. 11) is fitted locally and its coefficients are the
triple importances.
"""

from __future__ import annotations

import numpy as np

from ..kg import Triple
from .base import BaselineExplainer
from .perturbation import (
    PerturbationEngine,
    masks_to_samples,
    random_masks,
    weighted_linear_regression,
)


class EALime(BaselineExplainer):
    """Local linear surrogate explanation for EA pairs."""

    name = "EALime"

    def __init__(self, model, dataset=None, max_hops: int = 1, num_samples: int = 128, seed: int = 0) -> None:
        super().__init__(model, dataset, max_hops)
        self.num_samples = num_samples
        self.seed = seed

    def rank_triples(self, source, target, candidates1, candidates2) -> dict[Triple, float]:
        ordered1 = sorted(candidates1)
        ordered2 = sorted(candidates2)
        num_features = len(ordered1) + len(ordered2)
        if num_features == 0:
            return {}
        rng = np.random.default_rng(self.seed)
        engine = PerturbationEngine(self.model, source, target)
        masks = random_masks(num_features, self.num_samples, rng)
        samples = masks_to_samples(masks, ordered1, ordered2)
        values = np.array([engine.prediction_value(sample) for sample in samples])
        kernel = np.array([engine.lime_kernel(sample) for sample in samples])
        coefficients = weighted_linear_regression(masks.astype(float), values, kernel)
        return {
            triple: float(coefficient)
            for triple, coefficient in zip(ordered1 + ordered2, coefficients)
        }
