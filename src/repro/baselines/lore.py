"""LORE [24] adapted to entity alignment (Section V-B.1).

LORE explains a prediction with decision / counterfactual rules learned
from a *genetically generated* local neighbourhood.  This adaptation keeps
that structure at a reduced scale:

1. a local population of perturbed samples is evolved with mutation and
   crossover, steered towards a balanced mix of positive (prediction
   preserved) and negative (prediction flipped) samples;
2. a shallow decision list is induced over the triple features by greedy
   information gain, i.e. the triples whose presence best separates
   positive from negative samples;
3. the triples used by the decision list (the rule premises) receive
   importance in the order they were selected — the counterfactual side is
   implicit in the negative branch of each split.
"""

from __future__ import annotations

import math

import numpy as np

from ..kg import Triple
from .base import BaselineExplainer
from .perturbation import PerturbationEngine, masks_to_samples


def _entropy(positives: int, total: int) -> float:
    if total == 0 or positives in (0, total):
        return 0.0
    p = positives / total
    return -(p * math.log2(p) + (1 - p) * math.log2(1 - p))


class LORE(BaselineExplainer):
    """Genetic-neighbourhood decision-rule explanations for EA pairs."""

    name = "LORE"

    def __init__(
        self,
        model,
        dataset=None,
        max_hops: int = 1,
        population_size: int = 48,
        generations: int = 4,
        mutation_rate: float = 0.15,
        similarity_threshold: float | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__(model, dataset, max_hops)
        self.population_size = population_size
        self.generations = generations
        self.mutation_rate = mutation_rate
        self.similarity_threshold = similarity_threshold
        self.seed = seed

    # ------------------------------------------------------------------
    # Genetic neighbourhood generation
    # ------------------------------------------------------------------
    def _evolve_population(
        self, engine: PerturbationEngine, num_features: int, threshold: float, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Evolve masks towards a balanced positive/negative neighbourhood."""
        population = rng.random((self.population_size, num_features)) < 0.5
        population[0] = True  # the factual sample

        def labels_of(masks: np.ndarray) -> np.ndarray:
            samples = masks_to_samples(masks, self._ordered1, self._ordered2)
            return np.array(
                [engine.prediction_value(sample) >= threshold for sample in samples]
            )

        labels = labels_of(population)
        for _ in range(self.generations):
            # Fitness: prefer a balanced neighbourhood, so the minority class
            # gets higher fitness.
            positives = labels.sum()
            minority_positive = positives <= len(labels) / 2
            fitness = np.where(labels == minority_positive, 2.0, 1.0)
            probabilities = fitness / fitness.sum()
            parent_indices = rng.choice(len(population), size=len(population), p=probabilities)
            parents = population[parent_indices]
            crossover_points = rng.integers(0, num_features + 1, size=len(population))
            children = parents.copy()
            partners = population[rng.permutation(len(population))]
            for row, point in enumerate(crossover_points):
                children[row, point:] = partners[row, point:]
            mutations = rng.random(children.shape) < self.mutation_rate
            children = np.logical_xor(children, mutations)
            children[0] = True
            population = children
            labels = labels_of(population)
        return population, labels

    # ------------------------------------------------------------------
    # Decision-list induction
    # ------------------------------------------------------------------
    @staticmethod
    def _information_gain(masks: np.ndarray, labels: np.ndarray, feature: int) -> float:
        total = len(labels)
        if total == 0:
            return 0.0
        parent = _entropy(int(labels.sum()), total)
        present = masks[:, feature]
        gain = parent
        for branch in (present, ~present):
            count = int(branch.sum())
            if count == 0:
                continue
            gain -= (count / total) * _entropy(int(labels[branch].sum()), count)
        return gain

    def rank_triples(self, source, target, candidates1, candidates2) -> dict[Triple, float]:
        self._ordered1 = sorted(candidates1)
        self._ordered2 = sorted(candidates2)
        all_triples = self._ordered1 + self._ordered2
        num_features = len(all_triples)
        if num_features == 0:
            return {}
        rng = np.random.default_rng(self.seed)
        engine = PerturbationEngine(self.model, source, target)
        threshold = self.similarity_threshold
        if threshold is None:
            threshold = 0.8 * engine.original_value()
        population, labels = self._evolve_population(engine, num_features, threshold, rng)

        scores = {triple: 0.0 for triple in all_triples}
        remaining = list(range(num_features))
        masks = population
        current_labels = labels
        rank_bonus = float(num_features)
        for _ in range(min(num_features, 10)):
            gains = [(self._information_gain(masks, current_labels, f), f) for f in remaining]
            best_gain, best_feature = max(gains)
            if best_gain <= 0:
                break
            scores[all_triples[best_feature]] = rank_bonus
            rank_bonus -= 1.0
            remaining.remove(best_feature)
            # Descend into the branch where the triple is present (the
            # decision-rule premise for the factual, positive prediction).
            keep = masks[:, best_feature]
            if keep.sum() == 0:
                break
            masks = masks[keep]
            current_labels = current_labels[keep]
        return scores
