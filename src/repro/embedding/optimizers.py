"""Minimal NumPy optimisers with sparse (row-indexed) updates.

The EA models update only the embedding rows touched by a mini-batch, so
every optimiser exposes both a dense ``step`` and a sparse ``step_rows``
that accepts the row indices alongside the gradient block.  Duplicate
indices within one call are accumulated before the update (the same
behaviour as ``torch.Tensor.index_add_`` followed by one optimiser step).
"""

from __future__ import annotations

import numpy as np


def _accumulate_by_row(
    indices: np.ndarray, gradients: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Sum gradient rows that address the same index.

    Returns unique indices and the summed gradients aligned with them.
    """
    unique, inverse = np.unique(indices, return_inverse=True)
    summed = np.zeros((unique.shape[0], gradients.shape[1]), dtype=gradients.dtype)
    np.add.at(summed, inverse, gradients)
    return unique, summed


class Optimizer:
    """Base class: tracks per-parameter state and applies updates."""

    def __init__(self, learning_rate: float = 0.01) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.learning_rate = learning_rate

    def step(self, name: str, parameter: np.ndarray, gradient: np.ndarray) -> None:
        """Apply a dense gradient to *parameter* in place."""
        raise NotImplementedError

    def step_rows(
        self,
        name: str,
        parameter: np.ndarray,
        indices: np.ndarray,
        gradients: np.ndarray,
    ) -> None:
        """Apply a sparse (row-indexed) gradient to *parameter* in place."""
        raise NotImplementedError


class SGD(Optimizer):
    """Plain stochastic gradient descent."""

    def step(self, name: str, parameter: np.ndarray, gradient: np.ndarray) -> None:
        parameter -= self.learning_rate * gradient

    def step_rows(self, name, parameter, indices, gradients) -> None:
        unique, summed = _accumulate_by_row(np.asarray(indices), np.asarray(gradients))
        parameter[unique] -= self.learning_rate * summed


class Adagrad(Optimizer):
    """Adagrad with per-element accumulated squared gradients."""

    def __init__(self, learning_rate: float = 0.1, eps: float = 1e-8) -> None:
        super().__init__(learning_rate)
        self.eps = eps
        self._cache: dict[str, np.ndarray] = {}

    def _state(self, name: str, parameter: np.ndarray) -> np.ndarray:
        if name not in self._cache:
            self._cache[name] = np.zeros_like(parameter)
        return self._cache[name]

    def step(self, name, parameter, gradient) -> None:
        cache = self._state(name, parameter)
        cache += gradient**2
        parameter -= self.learning_rate * gradient / (np.sqrt(cache) + self.eps)

    def step_rows(self, name, parameter, indices, gradients) -> None:
        cache = self._state(name, parameter)
        unique, summed = _accumulate_by_row(np.asarray(indices), np.asarray(gradients))
        cache[unique] += summed**2
        parameter[unique] -= self.learning_rate * summed / (np.sqrt(cache[unique]) + self.eps)


class Adam(Optimizer):
    """Adam optimiser.

    The bias-correction step count is tracked per parameter name, which is
    accurate for the dense path and a standard approximation ("sparse
    Adam") for row-indexed updates.
    """

    def __init__(
        self,
        learning_rate: float = 0.005,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(learning_rate)
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._moment1: dict[str, np.ndarray] = {}
        self._moment2: dict[str, np.ndarray] = {}
        self._steps: dict[str, int] = {}

    def _state(self, name: str, parameter: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        if name not in self._moment1:
            self._moment1[name] = np.zeros_like(parameter)
            self._moment2[name] = np.zeros_like(parameter)
            self._steps[name] = 0
        return self._moment1[name], self._moment2[name]

    def step(self, name, parameter, gradient) -> None:
        m, v = self._state(name, parameter)
        self._steps[name] += 1
        t = self._steps[name]
        m *= self.beta1
        m += (1 - self.beta1) * gradient
        v *= self.beta2
        v += (1 - self.beta2) * gradient**2
        m_hat = m / (1 - self.beta1**t)
        v_hat = v / (1 - self.beta2**t)
        parameter -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.eps)

    def step_rows(self, name, parameter, indices, gradients) -> None:
        m, v = self._state(name, parameter)
        self._steps[name] += 1
        t = self._steps[name]
        unique, summed = _accumulate_by_row(np.asarray(indices), np.asarray(gradients))
        m[unique] = self.beta1 * m[unique] + (1 - self.beta1) * summed
        v[unique] = self.beta2 * v[unique] + (1 - self.beta2) * summed**2
        m_hat = m[unique] / (1 - self.beta1**t)
        v_hat = v[unique] / (1 - self.beta2**t)
        parameter[unique] -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.eps)


def make_optimizer(name: str, learning_rate: float) -> Optimizer:
    """Factory for optimisers by name (``"sgd"``, ``"adagrad"``, ``"adam"``)."""
    name = name.lower()
    if name == "sgd":
        return SGD(learning_rate)
    if name == "adagrad":
        return Adagrad(learning_rate)
    if name == "adam":
        return Adam(learning_rate)
    raise ValueError(f"unknown optimizer {name!r}")
