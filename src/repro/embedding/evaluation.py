"""Evaluation of alignment inference: Hits@k, MRR, and greedy accuracy.

The repair experiments of the paper report *accuracy*: the proportion of
test source entities whose greedy nearest-neighbour prediction is correct.
The standard ranking metrics (Hits@k, MRR) are provided as well because the
base models are usually reported with them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..kg import AlignmentSet


@dataclass(frozen=True)
class RankingMetrics:
    """Ranking quality of a similarity matrix against the gold alignment."""

    hits_at_1: float
    hits_at_5: float
    hits_at_10: float
    mrr: float
    num_evaluated: int

    def as_dict(self) -> dict[str, float]:
        return {
            "hits@1": self.hits_at_1,
            "hits@5": self.hits_at_5,
            "hits@10": self.hits_at_10,
            "mrr": self.mrr,
        }


def ranking_metrics(
    similarity: np.ndarray,
    source_entities: list[str],
    target_entities: list[str],
    gold: AlignmentSet,
) -> RankingMetrics:
    """Compute Hits@{1,5,10} and MRR of *similarity* against *gold*.

    Rows of *similarity* correspond to *source_entities*, columns to
    *target_entities*.  Sources without a gold counterpart among the columns
    are skipped.
    """
    target_index = {entity: i for i, entity in enumerate(target_entities)}
    hits1 = hits5 = hits10 = 0
    reciprocal_ranks: list[float] = []
    evaluated = 0
    for row, source in enumerate(source_entities):
        gold_targets = gold.targets_of(source)
        columns = [target_index[t] for t in gold_targets if t in target_index]
        if not columns:
            continue
        evaluated += 1
        # Optimistic rank: 1 + number of strictly better entries, no
        # per-row sort.  On tied scores this credits the gold column,
        # where the replaced argsort-position rank resolved ties in
        # unstable sort order; tie-free rows (the norm for trained
        # embeddings) are unaffected.
        row_values = similarity[row]
        best_value = row_values[columns].max()
        best_rank = int(np.sum(row_values > best_value)) + 1
        hits1 += best_rank <= 1
        hits5 += best_rank <= 5
        hits10 += best_rank <= 10
        reciprocal_ranks.append(1.0 / best_rank)
    if evaluated == 0:
        return RankingMetrics(0.0, 0.0, 0.0, 0.0, 0)
    return RankingMetrics(
        hits_at_1=hits1 / evaluated,
        hits_at_5=hits5 / evaluated,
        hits_at_10=hits10 / evaluated,
        mrr=float(np.mean(reciprocal_ranks)),
        num_evaluated=evaluated,
    )


def greedy_alignment(
    similarity: np.ndarray,
    source_entities: list[str],
    target_entities: list[str],
) -> AlignmentSet:
    """Greedy nearest-neighbour alignment: each source picks its best target.

    This is the alignment inference used by most embedding-based EA models
    (and the one whose one-to-many conflicts ExEA repairs): different
    sources may select the same target.
    """
    if similarity.size == 0:
        return AlignmentSet()
    best = similarity.argmax(axis=1)
    return AlignmentSet(
        (source, target_entities[int(column)])
        for source, column in zip(source_entities, best)
    )


def alignment_accuracy(predicted: AlignmentSet, gold: AlignmentSet) -> float:
    """Proportion of gold pairs recovered by *predicted* (Section V-C.1)."""
    return predicted.accuracy(gold)
