"""Embedding initialisation schemes used by the EA models."""

from __future__ import annotations

import numpy as np


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialisation.

    The bound is ``sqrt(6 / (fan_in + fan_out))`` where the last two axes
    are interpreted as (fan_in, fan_out); for an embedding matrix of shape
    ``(n, d)`` this reduces to ``sqrt(6 / (n + d))``.
    """
    if len(shape) < 2:
        fan_in = fan_out = shape[0]
    else:
        fan_in, fan_out = shape[-2], shape[-1]
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def normal(shape: tuple[int, ...], rng: np.random.Generator, std: float = 0.1) -> np.ndarray:
    """Gaussian initialisation with the given standard deviation."""
    return rng.normal(0.0, std, size=shape)


def uniform_unit(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """TransE-style initialisation: uniform in ``[-6/sqrt(d), 6/sqrt(d)]``, L2-normalised rows."""
    dim = shape[-1]
    bound = 6.0 / np.sqrt(dim)
    matrix = rng.uniform(-bound, bound, size=shape)
    return l2_normalize_rows(matrix)


def l2_normalize_rows(matrix: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Return *matrix* with every row scaled to unit L2 norm."""
    norms = np.linalg.norm(matrix, axis=-1, keepdims=True)
    return matrix / np.maximum(norms, eps)
