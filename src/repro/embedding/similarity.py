"""Similarity computation between entity embeddings.

Embedding-based EA infers alignment by nearest-neighbour search in vector
space (Section I of the paper).  This module provides cosine similarity,
the CSLS re-scaled similarity used by several recent models (including
Dual-AMN), and small helpers shared by the explanation code (cosine of two
vectors, pairwise similarity of path embeddings).
"""

from __future__ import annotations

import numpy as np


def cosine(u: np.ndarray, v: np.ndarray, eps: float = 1e-12) -> float:
    """Cosine similarity of two vectors."""
    denominator = np.linalg.norm(u) * np.linalg.norm(v)
    if denominator < eps:
        return 0.0
    return float(np.dot(u, v) / denominator)


def cosine_matrix(left: np.ndarray, right: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Pairwise cosine similarity between the rows of *left* and *right*.

    Returns an array of shape ``(len(left), len(right))``.
    """
    left = np.asarray(left, dtype=float)
    right = np.asarray(right, dtype=float)
    left_norm = left / np.maximum(np.linalg.norm(left, axis=1, keepdims=True), eps)
    right_norm = right / np.maximum(np.linalg.norm(right, axis=1, keepdims=True), eps)
    return left_norm @ right_norm.T


def csls_matrix(similarity: np.ndarray, k: int = 10) -> np.ndarray:
    """Cross-domain similarity local scaling (CSLS) of a similarity matrix.

    CSLS penalises hub entities that are similar to everything:
    ``csls(x, y) = 2 * sim(x, y) - r_T(x) - r_S(y)`` where ``r`` is the mean
    similarity to the k nearest neighbours in the other domain.
    """
    if similarity.size == 0:
        return similarity.copy()
    k_rows = min(k, similarity.shape[1])
    k_cols = min(k, similarity.shape[0])
    # Mean of the top-k entries per row / per column.
    row_topk = np.partition(similarity, -k_rows, axis=1)[:, -k_rows:]
    col_topk = np.partition(similarity, -k_cols, axis=0)[-k_cols:, :]
    r_source = row_topk.mean(axis=1, keepdims=True)
    r_target = col_topk.mean(axis=0, keepdims=True)
    return 2 * similarity - r_source - r_target


def top_k_indices(similarity_row: np.ndarray, k: int) -> np.ndarray:
    """Indices of the *k* largest entries of a similarity row, best first."""
    k = min(k, similarity_row.shape[0])
    if k <= 0:
        return np.array([], dtype=int)
    partial = np.argpartition(-similarity_row, k - 1)[:k]
    return partial[np.argsort(-similarity_row[partial])]


def greedy_match(similarity: np.ndarray) -> list[tuple[int, int]]:
    """Greedy one-to-one matching of a similarity matrix.

    Pairs are selected in decreasing similarity order, skipping rows and
    columns already used.  This is the "greedy matching" the paper uses to
    align relations with the highest mutual embedding similarity.
    """
    if similarity.size == 0:
        return []
    order = np.dstack(np.unravel_index(np.argsort(-similarity, axis=None), similarity.shape))[0]
    used_rows: set[int] = set()
    used_cols: set[int] = set()
    matches: list[tuple[int, int]] = []
    for row, col in order:
        if row in used_rows or col in used_cols:
            continue
        used_rows.add(int(row))
        used_cols.add(int(col))
        matches.append((int(row), int(col)))
        if len(used_rows) == similarity.shape[0] or len(used_cols) == similarity.shape[1]:
            break
    return matches


def mutual_nearest_pairs(similarity: np.ndarray) -> list[tuple[int, int]]:
    """Pairs ``(i, j)`` that are each other's nearest neighbour.

    Used for bidirectional path matching in the explanation generator and
    for mutual-nearest relation alignment.
    """
    if similarity.size == 0:
        return []
    best_for_row = similarity.argmax(axis=1)
    best_for_col = similarity.argmax(axis=0)
    return [
        (int(i), int(j))
        for i, j in enumerate(best_for_row)
        if best_for_col[j] == i
    ]
