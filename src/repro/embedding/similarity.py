"""Similarity computation between entity embeddings.

Embedding-based EA infers alignment by nearest-neighbour search in vector
space (Section I of the paper).  This module provides cosine similarity,
the CSLS re-scaled similarity used by several recent models (including
Dual-AMN), and small helpers shared by the explanation code (cosine of two
vectors, pairwise similarity of path embeddings).
"""

from __future__ import annotations

import heapq

import numpy as np


def cosine(u: np.ndarray, v: np.ndarray, eps: float = 1e-12) -> float:
    """Cosine similarity of two vectors."""
    denominator = np.linalg.norm(u) * np.linalg.norm(v)
    if denominator < eps:
        return 0.0
    return float(np.dot(u, v) / denominator)


def cosine_matrix(left: np.ndarray, right: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Pairwise cosine similarity between the rows of *left* and *right*.

    Returns an array of shape ``(len(left), len(right))``.
    """
    left = np.asarray(left, dtype=float)
    right = np.asarray(right, dtype=float)
    left_norm = left / np.maximum(np.linalg.norm(left, axis=1, keepdims=True), eps)
    right_norm = right / np.maximum(np.linalg.norm(right, axis=1, keepdims=True), eps)
    return left_norm @ right_norm.T


#: Row/column block size of the blocked similarity kernels.  Large enough
#: that the per-block numpy overhead is negligible, small enough that the
#: scratch buffers (one block of top-k copies) stay cache-friendly and the
#: 15k-scale datasets never materialise a second full dense matrix.
SIMILARITY_BLOCK = 1024


def csls_matrix(
    similarity: np.ndarray,
    k: int = 10,
    block: int = SIMILARITY_BLOCK,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Cross-domain similarity local scaling (CSLS) of a similarity matrix.

    CSLS penalises hub entities that are similar to everything:
    ``csls(x, y) = 2 * sim(x, y) - r_T(x) - r_S(y)`` where ``r`` is the mean
    similarity to the k nearest neighbours in the other domain.

    Operates in fixed-size row/column blocks: the top-k scratch copies and
    the rescaled output are produced ``block`` rows at a time, so the peak
    extra memory is one block rather than a second full dense matrix.
    Pass ``out=similarity`` to rescale fully in place.  Per-row (and
    per-column) partial sorts are independent, so blocking does not change
    the numerics.
    """
    if similarity.size == 0:
        return similarity.copy() if out is None else out
    num_rows, num_cols = similarity.shape
    k_rows = min(k, num_cols)
    k_cols = min(k, num_rows)
    dtype = similarity.dtype if np.issubdtype(similarity.dtype, np.floating) else np.float64
    # Mean of the top-k entries per row / per column, one block at a time.
    r_source = np.empty((num_rows, 1), dtype=dtype)
    for start in range(0, num_rows, block):
        stop = start + block
        row_topk = np.partition(similarity[start:stop], -k_rows, axis=1)[:, -k_rows:]
        r_source[start:stop, 0] = row_topk.mean(axis=1)
    r_target = np.empty((1, num_cols), dtype=dtype)
    for start in range(0, num_cols, block):
        stop = start + block
        col_topk = np.partition(similarity[:, start:stop], -k_cols, axis=0)[-k_cols:, :]
        r_target[0, start:stop] = col_topk.mean(axis=0)
    if out is None:
        out = np.empty_like(similarity, dtype=dtype)
    for start in range(0, num_rows, block):
        stop = start + block
        np.multiply(similarity[start:stop], 2.0, out=out[start:stop])
        out[start:stop] -= r_source[start:stop]
        out[start:stop] -= r_target
    return out


def top_k_indices(similarity_row: np.ndarray, k: int) -> np.ndarray:
    """Indices of the *k* largest entries of a similarity row, best first."""
    k = min(k, similarity_row.shape[0])
    if k <= 0:
        return np.array([], dtype=int)
    partial = np.argpartition(-similarity_row, k - 1)[:k]
    return partial[np.argsort(-similarity_row[partial])]


def greedy_match(similarity: np.ndarray) -> list[tuple[int, int]]:
    """Greedy one-to-one matching of a similarity matrix.

    Pairs are selected in decreasing similarity order, skipping rows and
    columns already used.  This is the "greedy matching" the paper uses to
    align relations with the highest mutual embedding similarity.

    Lazy selection instead of a flat ``argsort`` of the whole matrix
    (O(nm·log nm)): every row keeps exactly one live candidate — its best
    still-free column — in a max-heap.  A row's full column ordering is
    only materialised (once, O(m·log m)) if its candidate loses a column
    to an earlier match; rows that win their first candidate never sort at
    all, so the common case is O(nm) for the per-row argmax plus heap
    traffic.  Ties are broken deterministically by (row, column) order —
    the flat ``argsort`` this replaces used a non-stable sort, so its tie
    order was implementation-defined; on tie-free similarity matrices the
    two produce identical matchings.
    """
    if similarity.size == 0:
        return []
    num_rows, num_cols = similarity.shape
    used_cols = np.zeros(num_cols, dtype=bool)
    orders: list[np.ndarray | None] = [None] * num_rows
    positions = [0] * num_rows
    best_cols = np.argmax(similarity, axis=1)
    heap: list[tuple[float, int, int]] = [
        (-float(similarity[row, best_cols[row]]), row, int(best_cols[row]))
        for row in range(num_rows)
    ]
    heapq.heapify(heap)
    matches: list[tuple[int, int]] = []
    target = min(num_rows, num_cols)
    while heap and len(matches) < target:
        _, row, col = heapq.heappop(heap)
        if not used_cols[col]:
            matches.append((row, col))
            used_cols[col] = True
            continue
        # The candidate column was taken by an earlier match: walk this
        # row's (lazily computed) ordering to its next free column.
        if orders[row] is None:
            orders[row] = np.argsort(-similarity[row], kind="stable")
        order = orders[row]
        position = positions[row]
        while position < num_cols and used_cols[order[position]]:
            position += 1
        positions[row] = position
        if position < num_cols:
            next_col = int(order[position])
            heapq.heappush(heap, (-float(similarity[row, next_col]), row, next_col))
    return matches


def mutual_nearest_pairs(similarity: np.ndarray) -> list[tuple[int, int]]:
    """Pairs ``(i, j)`` that are each other's nearest neighbour.

    Used for bidirectional path matching in the explanation generator and
    for mutual-nearest relation alignment.
    """
    if similarity.size == 0:
        return []
    best_for_row = similarity.argmax(axis=1)
    best_for_col = similarity.argmax(axis=0)
    return [
        (int(i), int(j))
        for i, j in enumerate(best_for_row)
        if best_for_col[j] == i
    ]
