"""Embedding substrate: initialisers, optimisers, sampling, similarity, evaluation."""

from .evaluation import (
    RankingMetrics,
    alignment_accuracy,
    greedy_alignment,
    ranking_metrics,
)
from .initializers import l2_normalize_rows, normal, uniform_unit, xavier_uniform
from .negative_sampling import HardNegativeSampler, uniform_corrupt
from .optimizers import SGD, Adagrad, Adam, Optimizer, make_optimizer
from .similarity import (
    SIMILARITY_BLOCK,
    cosine,
    cosine_matrix,
    csls_matrix,
    greedy_match,
    mutual_nearest_pairs,
    top_k_indices,
)

__all__ = [
    "Adagrad",
    "Adam",
    "HardNegativeSampler",
    "Optimizer",
    "RankingMetrics",
    "SGD",
    "SIMILARITY_BLOCK",
    "alignment_accuracy",
    "cosine",
    "cosine_matrix",
    "csls_matrix",
    "greedy_alignment",
    "greedy_match",
    "l2_normalize_rows",
    "make_optimizer",
    "mutual_nearest_pairs",
    "normal",
    "ranking_metrics",
    "top_k_indices",
    "uniform_corrupt",
    "uniform_unit",
    "xavier_uniform",
]
