"""Negative sampling strategies for EA embedding training.

Two strategies from the paper's model line-up:

* uniform corruption (MTransE, GCN-Align): replace head or tail of a triple
  with a random entity;
* hard / truncated negative sampling (AlignE, Dual-AMN): sample negatives
  from the nearest neighbours of the entity being corrupted, which is the
  mechanism the paper credits for those models' ability to separate similar
  entities (Section V-C.4).
"""

from __future__ import annotations

import numpy as np

from .similarity import cosine_matrix


def uniform_corrupt(
    heads: np.ndarray,
    tails: np.ndarray,
    num_entities: int,
    rng: np.random.Generator,
    num_negatives: int = 1,
) -> tuple[np.ndarray, np.ndarray]:
    """Corrupt each (head, tail) pair by replacing one side uniformly at random.

    Returns arrays of shape ``(len(heads) * num_negatives,)`` with the
    corrupted head and tail ids (the uncorrupted side keeps its original id).
    """
    if num_entities < 2:
        raise ValueError("need at least two entities to sample negatives")
    heads = np.repeat(np.asarray(heads), num_negatives)
    tails = np.repeat(np.asarray(tails), num_negatives)
    corrupt_head = rng.random(heads.shape[0]) < 0.5
    random_entities = rng.integers(0, num_entities, size=heads.shape[0])
    negative_heads = np.where(corrupt_head, random_entities, heads)
    negative_tails = np.where(corrupt_head, tails, random_entities)
    return negative_heads, negative_tails


class HardNegativeSampler:
    """Truncated nearest-neighbour negative sampling.

    A candidate table of the ``truncation`` nearest neighbours of every
    entity is rebuilt from the current embeddings whenever
    :meth:`refresh` is called (typically every few epochs, as in AlignE).
    :meth:`sample` then draws negatives for an entity from its own
    neighbour list, producing "hard" negatives that are close in the
    embedding space.
    """

    def __init__(self, truncation: int = 10, seed: int = 0) -> None:
        if truncation < 1:
            raise ValueError("truncation must be >= 1")
        self.truncation = truncation
        self._rng = np.random.default_rng(seed)
        self._neighbors: np.ndarray | None = None

    def refresh(self, embeddings: np.ndarray) -> None:
        """Rebuild the nearest-neighbour candidate table from *embeddings*."""
        num_entities = embeddings.shape[0]
        if num_entities < 2:
            raise ValueError("need at least two entities")
        similarity = cosine_matrix(embeddings, embeddings)
        np.fill_diagonal(similarity, -np.inf)
        k = min(self.truncation, num_entities - 1)
        self._neighbors = np.argpartition(-similarity, k - 1, axis=1)[:, :k]

    @property
    def is_ready(self) -> bool:
        return self._neighbors is not None

    def sample(self, entity_ids: np.ndarray, num_negatives: int = 1) -> np.ndarray:
        """Sample hard negatives for each entity id.

        Returns an array of shape ``(len(entity_ids), num_negatives)``.

        Raises:
            RuntimeError: if :meth:`refresh` has not been called yet.
        """
        if self._neighbors is None:
            raise RuntimeError("call refresh(embeddings) before sampling")
        entity_ids = np.asarray(entity_ids)
        candidates = self._neighbors[entity_ids]
        choice = self._rng.integers(0, candidates.shape[1], size=(entity_ids.shape[0], num_negatives))
        return np.take_along_axis(candidates, choice, axis=1)
