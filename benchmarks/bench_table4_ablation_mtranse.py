"""Table IV: ablation of the three conflict resolvers on MTransE.

``cr1`` = relation-alignment conflicts, ``cr2`` = one-to-many conflicts,
``cr3`` = low-confidence conflicts.  Expected shape: every resolver
contributes; removing the conflict-resolution capability for duplicate
targets (cr2) or the low-confidence re-alignment (cr3) costs the most.
(The paper attributes the largest drop to cr2; in this reproduction cr3 can
dominate at small scale — see EXPERIMENTS.md for the discussion.)
"""

import pytest

from conftest import ALL_DATASETS, run_once
from repro.experiments import format_ablation_rows, run_ablation_experiment


@pytest.mark.parametrize("dataset_name", ALL_DATASETS)
def test_table4_ablation_mtranse(benchmark, dataset_name, dataset_cache, model_cache):
    dataset = dataset_cache(dataset_name)
    model = model_cache("MTransE", dataset_name)

    rows = run_once(benchmark, lambda: run_ablation_experiment(model, dataset))
    print()
    print(format_ablation_rows(rows, title=f"[Table IV] MTransE ablation on {dataset_name}"))
    full = next(row for row in rows if row.variant == "ExEA")
    assert all(row.accuracy <= full.accuracy + 0.1 for row in rows)
