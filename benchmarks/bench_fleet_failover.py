"""Fleet-autonomy benchmark: failover, lease revocation, online rebalance.

One subprocess cluster (2 shards x 2 replicas, zone labels ``east``/``west``)
lives through the full autonomy story while a replay workload keeps flowing:

1. **Baseline** — replay against the healthy fleet (p50/p95 floor).
2. **Hard kill** — SIGKILL one replica mid-replay; every request must
   still answer (zone-aware failover absorbs the loss) and the slowest
   request of the post-kill chunk is the *recovery latency*.
3. **Half-dead replica** — SIGSTOP a replica past its lease TTL; the
   manager must revoke the lease (time-to-revoke) and restore it after
   SIGCONT (time-to-restore), with traffic unharmed either way.
4. **Online rebalance** — hammer one shard until the manager plans and
   completes a slot migration (time-to-migrate), then re-read the hot
   pairs through the moved routing.

Hard invariant at any speed: every answer — before, during, and after
every fault — is bit-identical to an in-process run of the same
snapshot.  Autonomy must never cost a bit of correctness.

Run directly (``python bench_fleet_failover.py [--quick]``) or via
pytest.  ``--quick`` is the CI smoke mode: tiny workloads, no numeric
assertions on the timings, no artifact writes.
"""

import json
import sys
import time
from pathlib import Path

_SRC = Path(__file__).parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from conftest import run_once  # noqa: E402
from repro.datasets import replay_workload  # noqa: E402
from repro.experiments import (  # noqa: E402
    ExperimentScale,
    prepare_dataset,
    run_metadata,
    sample_correct_pairs,
    train_model,
)
from repro.service import (  # noqa: E402
    CONFIDENCE,
    EXPLAIN,
    ExEAClient,
    RebalanceConfig,
    ReplicatedLocalCluster,
    ServiceConfig,
    ShardedExplanationService,
    WeightConfig,
)
from repro.service.sharding import ShardRouter  # noqa: E402

ARTIFACT = Path(__file__).parent / "BENCH_service.json"

NUM_PAIRS = 40
BASELINE_REQUESTS = 600
FAILOVER_REQUESTS = 400
#: Manager cadence: fast probes so the control loops converge in seconds.
PROBE_INTERVAL = 0.1
LEASE_TTL = 1.0
FLEET_SCALE = ExperimentScale(dataset_scale=1.0, embedding_dim=24, seed=1)
FLEET_MODEL = "MTransE"

_fixture_cache: dict = {}


def _fixtures():
    """Dataset + model at the fleet scale, cached for the process."""
    if not _fixture_cache:
        dataset = prepare_dataset("ZH-EN", FLEET_SCALE)
        _fixture_cache["dataset"] = dataset
        _fixture_cache["model"] = train_model(FLEET_MODEL, dataset, FLEET_SCALE)
    return _fixture_cache["dataset"], _fixture_cache["model"]


def _write_row(key: str, row: dict) -> None:
    existing = {}
    if ARTIFACT.exists():
        existing = json.loads(ARTIFACT.read_text())
    existing[key] = {**row, "meta": run_metadata()}
    ARTIFACT.write_text(json.dumps(existing, indent=2, sort_keys=True))


def _percentile(latencies: list[float], q: float) -> float:
    if not latencies:
        return 0.0
    ordered = sorted(latencies)
    return ordered[int(q * (len(ordered) - 1))] * 1000.0


def _replay(client, workload, expected) -> dict:
    """Replay *workload*, timing each request and checking every bit."""
    latencies: list[float] = []
    mismatches = 0
    for index, (kind, source, target) in enumerate(workload):
        began = time.perf_counter()
        if kind == EXPLAIN:
            result = client.explain(source, target)
        else:
            result = client.confidence(source, target)
        latencies.append(time.perf_counter() - began)
        if result != expected[index]:
            mismatches += 1
    return {
        "requests": len(workload),
        "mismatches": mismatches,
        "p50_ms": _percentile(latencies, 0.50),
        "p95_ms": _percentile(latencies, 0.95),
        "max_ms": _percentile(latencies, 1.0),
    }


def _counters(cluster) -> dict:
    return cluster.manager.fleet_snapshot()["counters"]


def _wait_for(predicate, deadline_seconds: float, tick=None) -> float:
    """Poll *predicate* (optionally driving *tick*); return elapsed seconds.

    Returns ``-1.0`` on deadline — callers record the miss instead of
    hanging the whole benchmark run.
    """
    start = time.perf_counter()
    while time.perf_counter() - start < deadline_seconds:
        if predicate():
            return time.perf_counter() - start
        if tick is not None:
            tick()
        time.sleep(PROBE_INTERVAL / 2)
    return -1.0


def _lease_leg(cluster, client, workload, expected) -> dict:
    """SIGSTOP a replica past its lease; measure revoke + restore times."""
    before = _counters(cluster)["lease_revocations"]
    cluster.stop_replica(1, 0)
    stopped = time.perf_counter()
    revoke_seconds = _wait_for(
        lambda: _counters(cluster)["lease_revocations"] > before,
        deadline_seconds=10 * LEASE_TTL,
    )
    # Traffic through the outage: the frozen replica holds no lease, so
    # routing never offers it a request.
    during = _replay(client, workload, expected)
    cluster.cont_replica(1, 0)
    restored_before = _counters(cluster)["lease_restored"]

    def _all_leases_ok():
        rows = client.routing_snapshot()["replicas"]
        return all(row["lease_ok"] for row in rows if row["healthy"])

    restore_seconds = _wait_for(
        lambda: _counters(cluster)["lease_restored"] >= restored_before
        and _all_leases_ok(),
        deadline_seconds=10 * LEASE_TTL,
    )
    return {
        "revoke_seconds": revoke_seconds,
        "restore_seconds": restore_seconds,
        "outage_seconds": time.perf_counter() - stopped,
        "replay_during_outage": during,
    }


def _rebalance_leg(cluster, client, hot_pairs, expected_hot, deadline: float) -> dict:
    """Hammer the hot shard until a slot migration completes."""

    def _drive():
        # Enough hot requests per stats window to clear the planner's
        # min_requests floor even with a handful of pairs.
        for _ in range(max(1, 40 // len(hot_pairs))):
            for source, target in hot_pairs:
                client.explain(source, target)

    migrate_seconds = _wait_for(
        lambda: _counters(cluster)["migrations_completed"] >= 1,
        deadline_seconds=deadline,
        tick=_drive,
    )
    # Post-migration read of every hot pair through the moved routing.
    moved = [client.explain(*pair) for pair in hot_pairs]
    return {
        "migrate_seconds": migrate_seconds,
        "migrations_completed": _counters(cluster)["migrations_completed"],
        "slots_moved": client.routing_snapshot()["slots_moved"],
        "hot_pairs_identical": sum(
            1 for got, want in zip(moved, expected_hot) if got == want
        ),
        "hot_pairs": len(hot_pairs),
    }


def test_fleet_failover(benchmark, quick):
    dataset, model = _fixtures()
    pairs = sample_correct_pairs(
        model, dataset, 12 if quick else NUM_PAIRS, seed=FLEET_SCALE.seed
    )
    router = ShardRouter(2)
    hot_pairs = [pair for pair in pairs if router.shard_of(*pair) == 0]
    assert hot_pairs, "the sampled pairs must hit shard 0"
    baseline_n = 120 if quick else BASELINE_REQUESTS
    failover_n = 80 if quick else FAILOVER_REQUESTS
    baseline_workload = replay_workload(
        pairs, baseline_n, seed=FLEET_SCALE.seed, kinds=(EXPLAIN, CONFIDENCE)
    )
    failover_workload = replay_workload(
        pairs, failover_n, seed=FLEET_SCALE.seed + 1, kinds=(EXPLAIN, CONFIDENCE)
    )
    config = ServiceConfig(
        max_batch_size=32, max_wait_ms=2.0, num_shards=2, num_workers=2
    )

    # Ground truth from an in-process run of the same snapshot: the bar
    # every faulted answer must clear bit-for-bit.
    with ShardedExplanationService(model, dataset, config) as local:
        local_client = ExEAClient(local)
        expected_baseline = local_client.replay(baseline_workload, timeout=120)
        expected_failover = local_client.replay(failover_workload, timeout=120)
        expected_hot = [local_client.explain(*pair) for pair in hot_pairs]

    def measure():
        start = time.perf_counter()
        with ReplicatedLocalCluster(
            model,
            dataset,
            num_shards=2,
            num_replicas=2,
            service_config=config,
            probe_interval=PROBE_INTERVAL,
            probe_timeout=1.0,
            stats_every=2,
            lease_ttl=LEASE_TTL,
            weights=WeightConfig(),
            rebalance=RebalanceConfig(
                threshold=1.2, sustain=2, min_requests=32, handoff_cycles=1
            ),
            replica_zones=["east", "west"],
        ) as cluster:
            client = cluster.client
            baseline = _replay(client, baseline_workload, expected_baseline)

            # Hard kill: one replica of shard 0 dies; the replay keeps going.
            cluster.kill_replica(0, 0)
            killed = time.perf_counter()
            failover = _replay(client, failover_workload, expected_failover)
            failover["recovery_seconds"] = time.perf_counter() - killed

            lease = _lease_leg(cluster, client, failover_workload, expected_failover)
            rebalance = _rebalance_leg(
                cluster, client, hot_pairs, expected_hot, 20.0 if quick else 45.0
            )
            fleet = cluster.manager.fleet_snapshot()
        return {
            "workload": "fleet-failover",
            "model": model.name,
            "num_shards": 2,
            "num_replicas": 2,
            "zones": ["east", "west"],
            "lease_ttl": LEASE_TTL,
            "probe_interval": PROBE_INTERVAL,
            "num_pairs": len(pairs),
            "baseline": baseline,
            "failover": failover,
            "lease": lease,
            "rebalance": rebalance,
            "counters": fleet["counters"],
            "seconds": time.perf_counter() - start,
        }

    row = run_once(benchmark, measure)
    print()
    print(
        f"[fleet-failover] baseline p95 {row['baseline']['p95_ms']:.2f} ms over "
        f"{row['baseline']['requests']} requests; kill: p95 "
        f"{row['failover']['p95_ms']:.2f} ms, max {row['failover']['max_ms']:.2f} ms, "
        f"0 failed of {row['failover']['requests']}"
    )
    print(
        f"[fleet-failover] lease: revoked in {row['lease']['revoke_seconds']:.2f}s, "
        f"restored in {row['lease']['restore_seconds']:.2f}s "
        f"(ttl {row['lease_ttl']:.1f}s); rebalance: first migration in "
        f"{row['rebalance']['migrate_seconds']:.2f}s, "
        f"{row['rebalance']['slots_moved']} slots moved"
    )

    # Hard invariants at any speed: no fault may fail a request or flip a
    # bit — in the baseline, through the kill, or during the frozen lease.
    assert row["baseline"]["mismatches"] == 0
    assert row["failover"]["mismatches"] == 0
    assert row["lease"]["replay_during_outage"]["mismatches"] == 0
    assert row["rebalance"]["hot_pairs_identical"] == row["rebalance"]["hot_pairs"]
    if quick:
        return  # smoke mode: no numeric assertions, no artifact writes
    _write_row(row["workload"], row)
    # Acceptance: the control loops actually fired — the lease was
    # revoked and restored within a few TTLs, and at least one slot
    # migrated online under the sustained hot-shard load.
    assert 0.0 <= row["lease"]["revoke_seconds"] <= 10 * LEASE_TTL
    assert 0.0 <= row["lease"]["restore_seconds"] <= 10 * LEASE_TTL
    assert row["rebalance"]["migrations_completed"] >= 1
    assert row["rebalance"]["slots_moved"] >= 1


if __name__ == "__main__":
    import pytest

    raise SystemExit(pytest.main([__file__, "-q", *sys.argv[1:]]))
