"""Micro-benchmark: batched explanation engine vs the seed sequential path.

Measures wall-clock of ``ExplanationGenerator.explain_pairs`` (the
vectorized batch engine with shared embedding & neighborhood caches)
against a faithful replica of the seed implementation (set-based BFS
neighbourhoods, set-based DFS path enumeration, one-vector-at-a-time path
embedding, per-pair cosine matrix — no caches of any kind) on the Fig. 4
workload: Dual-AMN on ZH-EN with first- and second-order candidates.

Results are written to ``BENCH_engine.json`` next to this file so future
PRs can track the perf trajectory.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from conftest import run_once
from repro.core import ExplanationConfig, ExplanationGenerator
from repro.core.explanation import RelationPath
from repro.core.explanation.subgraph import Explanation, MatchedPath
from repro.embedding import cosine_matrix, mutual_nearest_pairs
from repro.experiments import run_metadata
from repro.experiments import sample_correct_pairs
from repro.kg import EADataset

ARTIFACT = Path(__file__).parent / "BENCH_engine.json"


# ----------------------------------------------------------------------
# Seed replica (the pre-engine hot path, kept cache-free on purpose)
# ----------------------------------------------------------------------
def _seed_neighborhood(kg, entity, max_hops):
    frontier = {entity}
    seen = {entity}
    for _ in range(max_hops):
        next_frontier = set()
        for node in frontier:
            found = set()
            for triple in kg.outgoing(node):
                found.add(triple.tail)
            for triple in kg.incoming(node):
                found.add(triple.head)
            found.discard(node)
            next_frontier |= found
        next_frontier -= seen
        seen |= next_frontier
        frontier = next_frontier
    return seen - {entity}


def _seed_relation_paths(kg, source, target, max_length):
    results = []

    def extend(current, visited, path):
        if len(path) >= max_length:
            return
        for triple in kg.triples_of(current):
            nxt = triple.other_entity(current)
            if nxt in visited:
                continue
            new_path = path + (triple,)
            if nxt == target:
                results.append(new_path)
            else:
                extend(nxt, visited | {nxt}, new_path)

    extend(source, {source}, ())
    return results


def _seed_triples_within_hops(kg, entity, hops):
    frontier = {entity}
    seen_entities = {entity}
    collected = set()
    for _ in range(hops):
        next_frontier = set()
        for node in frontier:
            for triple in kg.triples_of(node):
                collected.add(triple)
                other = triple.other_entity(node)
                if other not in seen_entities:
                    next_frontier.add(other)
        seen_entities |= next_frontier
        frontier = next_frontier
        if not frontier:
            break
    return collected


def _seed_path_embedding(path, model):
    entities = path.entities()
    relations = path.relations()
    n = len(relations)
    entity_part = np.sum([model.entity_embedding(e) for e in entities[:-1]], axis=0) / n
    relation_part = np.sum([model.relation_embedding(r) for r in relations], axis=0) / n
    return np.concatenate([entity_part, relation_part])


def seed_explain(model, dataset, config, source, target, alignment):
    """The seed ``ExplanationGenerator.explain``, replicated cache-free."""
    candidates1 = _seed_triples_within_hops(dataset.kg1, source, config.max_hops)
    candidates2 = _seed_triples_within_hops(dataset.kg2, target, config.max_hops)
    explanation = Explanation(
        source=source,
        target=target,
        candidate_triples1=candidates1,
        candidate_triples2=candidates2,
    )
    neighbors1 = _seed_neighborhood(dataset.kg1, source, config.max_hops)
    neighbors2 = _seed_neighborhood(dataset.kg2, target, config.max_hops)
    neighbor_pairs = []
    for neighbor1 in sorted(neighbors1):
        for neighbor2 in sorted(alignment.targets_of(neighbor1)):
            if neighbor2 in neighbors2 and (neighbor1, neighbor2) != (source, target):
                neighbor_pairs.append((neighbor1, neighbor2))
    if not neighbor_pairs:
        return explanation
    paths1, paths2 = [], []
    for neighbor1, neighbor2 in neighbor_pairs:
        found1 = [
            RelationPath(source=source, target=neighbor1, triples=p)
            for p in _seed_relation_paths(dataset.kg1, source, neighbor1, config.max_hops)
        ][: config.max_paths_per_neighbor]
        found2 = [
            RelationPath(source=target, target=neighbor2, triples=p)
            for p in _seed_relation_paths(dataset.kg2, target, neighbor2, config.max_hops)
        ][: config.max_paths_per_neighbor]
        paths1.extend(found1)
        paths2.extend(found2)
    if not paths1 or not paths2:
        return explanation
    embeddings1 = np.stack([_seed_path_embedding(p, model) for p in paths1])
    embeddings2 = np.stack([_seed_path_embedding(p, model) for p in paths2])
    similarity = cosine_matrix(embeddings1, embeddings2)
    neighbor_pair_set = set(neighbor_pairs)
    for i, j in mutual_nearest_pairs(similarity):
        path1, path2 = paths1[i], paths2[j]
        if (path1.target, path2.target) not in neighbor_pair_set:
            continue
        score = float(similarity[i, j])
        if score < config.min_path_similarity:
            continue
        explanation.matched_paths.append(MatchedPath(path1, path2, score))
    explanation.matched_paths.sort(key=lambda m: -m.similarity)
    return explanation


@pytest.mark.parametrize("max_hops", [1, 2], ids=["ZH-EN-1", "ZH-EN-2"])
def test_engine_speedup(benchmark, max_hops, dataset_cache, model_cache, bench_scale):
    dataset = dataset_cache("ZH-EN")
    model = model_cache("Dual-AMN", "ZH-EN")
    pairs = sample_correct_pairs(
        model, dataset, bench_scale.explanation_sample, seed=bench_scale.seed
    )
    config = ExplanationConfig(max_hops=max_hops)

    def cold_dataset():
        # Fresh graph copies per repetition so every KG-level memo (hop
        # sets, walk cache) starts cold.  The CSR index itself is a
        # per-graph artifact built once per graph lifetime (the seed's
        # dict adjacency is likewise maintained eagerly at construction),
        # so it is warmed outside the timed region.
        copied = EADataset(
            dataset.kg1.copy(),
            dataset.kg2.copy(),
            dataset.train_alignment,
            dataset.test_alignment,
            name=dataset.name,
        )
        copied.kg1.index().adjacency()
        copied.kg2.index().adjacency()
        return copied

    repetitions = 5

    def measure():
        reference = ExplanationGenerator(model, dataset, config).reference_alignment()

        sequential_seconds = float("inf")
        for _ in range(repetitions):
            start = time.perf_counter()
            sequential = {
                pair: seed_explain(model, dataset, config, pair[0], pair[1], reference)
                for pair in pairs
            }
            sequential_seconds = min(sequential_seconds, time.perf_counter() - start)

        batch_seconds = float("inf")
        for _ in range(repetitions):
            generator = ExplanationGenerator(model, cold_dataset(), config)
            start = time.perf_counter()
            batched = generator.explain_pairs(pairs, reference)
            batch_seconds = min(batch_seconds, time.perf_counter() - start)

        matching = sum(
            1
            for pair in pairs
            if {(m.path1, m.path2) for m in batched[pair].matched_paths}
            == {(m.path1, m.path2) for m in sequential[pair].matched_paths}
        )
        return {
            "workload": f"ZH-EN-{max_hops}",
            "model": model.name,
            "num_pairs": len(pairs),
            "repetitions": repetitions,
            "sequential_seconds": sequential_seconds,
            "batch_seconds": batch_seconds,
            "speedup": sequential_seconds / max(batch_seconds, 1e-12),
            "pairs_with_identical_matches": matching,
        }

    row = run_once(benchmark, measure)
    print()
    print(
        f"[engine] {row['workload']}: sequential {row['sequential_seconds'] * 1000:.1f}ms, "
        f"batch {row['batch_seconds'] * 1000:.1f}ms, speedup {row['speedup']:.2f}x "
        f"({row['pairs_with_identical_matches']}/{row['num_pairs']} identical)"
    )

    existing = {}
    if ARTIFACT.exists():
        existing = json.loads(ARTIFACT.read_text())
    existing[row["workload"]] = {**row, "meta": run_metadata()}
    ARTIFACT.write_text(json.dumps(existing, indent=2, sort_keys=True))

    assert row["pairs_with_identical_matches"] == row["num_pairs"]
    # Acceptance: the batch engine beats the seed sequential path by >= 3x
    # on the second-order workload (first-order neighbourhoods are tiny, so
    # the fixed numpy overhead eats part of the win there).
    if max_hops == 2:
        assert row["speedup"] >= 3.0
