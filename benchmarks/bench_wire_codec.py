"""Micro-benchmark: binary wire v2 codec vs the v1 JSON codec.

Measures the codec work alone (no sockets, no service): a realistic
batch-response frame of ZH-EN explanation results is encoded and decoded
under both wires, plus the blob paths the warm replay actually runs —
server-side splicing of pre-encoded results and client-side cached blob
decoding.  Three figures per codec/path:

* ``encode_us_per_frame`` / ``decode_us_per_frame`` — best-of-``REPEATS``
  mean microseconds over ``ITERATIONS`` passes;
* ``frame_bytes`` — the encoded body size (the binary column shows what
  string interning buys on URI-heavy payloads).

The workload mirrors the warm remote replay: ``BATCH`` results drawn
Zipf-style from a small set of hot explanation payloads, so the blob
paths get the duplicate-heavy traffic their caches exist for.

Results land in ``BENCH_wire.json`` next to this file.  Run directly
(``python bench_wire_codec.py [--quick]``) or via pytest; ``--quick`` is
the CI smoke mode (tiny counts, no assertions, no artifact writes).
"""

import json
import sys
import time
from pathlib import Path

from conftest import run_once
from repro.core import ExEA, ExEAConfig, ExplanationConfig
from repro.datasets import replay_workload
from repro.experiments import run_metadata, sample_correct_pairs
from repro.service.transport import decode_binary, encode_binary
from repro.service.transport.protocol import OP_EXPLAIN, encode_value
from repro.service.transport.wire import encode_binary_value

ARTIFACT = Path(__file__).parent / "BENCH_wire.json"

#: Results per measured batch frame (the transport's BATCH_CHUNK_SIZE).
BATCH = 256
#: Unique hot pairs the batch draws from (the warm-replay working set).
HOT_PAIRS = 20
MAX_HOPS = 2
ITERATIONS = 30
REPEATS = 5


def _measure_us(function, iterations: int, repeats: int) -> float:
    """Best-of-*repeats* mean microseconds per call over *iterations*."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(iterations):
            function()
        best = min(best, time.perf_counter() - start)
    return best / iterations * 1e6


def test_wire_codec(benchmark, dataset_cache, model_cache, bench_scale, quick):
    dataset = dataset_cache("ZH-EN")
    model = model_cache("Dual-AMN", "ZH-EN")
    pairs = sample_correct_pairs(
        model, dataset, bench_scale.explanation_sample, seed=bench_scale.seed
    )
    exea = ExEA(model, dataset, ExEAConfig(explanation=ExplanationConfig(max_hops=MAX_HOPS)))
    reference = exea.reference_alignment()

    batch = 16 if quick else BATCH
    iterations = 3 if quick else ITERATIONS
    repeats = 1 if quick else REPEATS

    # A batch response frame as the server builds it: `batch` explanation
    # results over `HOT_PAIRS` unique hot pairs (Zipf-style duplication).
    workload = replay_workload(
        pairs[:HOT_PAIRS], batch, seed=bench_scale.seed, skew=1.0
    )
    explanations = {
        pair: exea.generator.explain(*pair, reference)
        for pair in {(source, target) for _, source, target in workload}
    }
    results = [explanations[(source, target)] for _, source, target in workload]

    json_payload = {"results": [{"ok": encode_value(OP_EXPLAIN, item)} for item in results]}
    raw_payload = {"results": [{"ok": item} for item in results]}
    blobs = {pair: encode_binary_value(item) for pair, item in explanations.items()}
    blob_payload = {
        "results": [{"ok": blobs[(source, target)]} for _, source, target in workload]
    }

    def measure():
        json_body = json.dumps(json_payload, separators=(",", ":"), sort_keys=True).encode()
        binary_body = encode_binary(raw_payload)
        spliced_body = encode_binary(blob_payload)
        decode_cache: dict = {}
        decode_binary(spliced_body, decode_cache)  # warm the blob cache

        row = {
            "workload": "ZH-EN-wire",
            "max_hops": MAX_HOPS,
            "model": model.name,
            "batch": batch,
            "unique_results": len(explanations),
            "iterations": iterations,
            "repeats": repeats,
            "json": {
                "frame_bytes": len(json_body),
                "encode_us_per_frame": _measure_us(
                    lambda: json.dumps(
                        json_payload, separators=(",", ":"), sort_keys=True
                    ).encode(),
                    iterations,
                    repeats,
                ),
                "decode_us_per_frame": _measure_us(
                    lambda: json.loads(json_body), iterations, repeats
                ),
            },
            "binary": {
                "frame_bytes": len(binary_body),
                "encode_us_per_frame": _measure_us(
                    lambda: encode_binary(raw_payload), iterations, repeats
                ),
                "decode_us_per_frame": _measure_us(
                    lambda: decode_binary(binary_body), iterations, repeats
                ),
            },
            "binary_spliced": {
                "frame_bytes": len(spliced_body),
                # The server's warm path: splice pre-encoded blobs.
                "encode_us_per_frame": _measure_us(
                    lambda: encode_binary(blob_payload), iterations, repeats
                ),
                # The client's warm path: every blob hits the decode cache.
                "decode_us_per_frame": _measure_us(
                    lambda: decode_binary(spliced_body, decode_cache),
                    iterations,
                    repeats,
                ),
            },
        }
        row["binary_vs_json_bytes"] = row["json"]["frame_bytes"] / row["binary"]["frame_bytes"]
        row["spliced_vs_json_encode"] = (
            row["json"]["encode_us_per_frame"]
            / max(row["binary_spliced"]["encode_us_per_frame"], 1e-9)
        )
        row["cached_vs_json_decode"] = (
            row["json"]["decode_us_per_frame"]
            / max(row["binary_spliced"]["decode_us_per_frame"], 1e-9)
        )
        return row

    row = run_once(benchmark, measure)
    print()
    print(
        f"[wire] {row['batch']}-result frame: json {row['json']['frame_bytes']} B, "
        f"binary {row['binary']['frame_bytes']} B ({row['binary_vs_json_bytes']:.1f}x smaller); "
        f"encode json {row['json']['encode_us_per_frame']:.0f} us vs "
        f"spliced {row['binary_spliced']['encode_us_per_frame']:.0f} us "
        f"({row['spliced_vs_json_encode']:.1f}x); "
        f"decode json {row['json']['decode_us_per_frame']:.0f} us vs "
        f"cached {row['binary_spliced']['decode_us_per_frame']:.0f} us "
        f"({row['cached_vs_json_decode']:.1f}x)"
    )

    # Correctness at any speed: both codecs round-trip the same payload.
    _, decoded = decode_binary(encode_binary(raw_payload))
    assert len(decoded["results"]) == batch
    if quick:
        return  # smoke mode: no numeric assertions, no artifact writes
    ARTIFACT.write_text(
        json.dumps(
            {row["workload"]: {**row, "meta": run_metadata()}}, indent=2, sort_keys=True
        )
    )
    # Interning must shrink the URI-heavy frame, and the warm blob paths
    # must beat the JSON codec on both directions.
    assert row["binary_vs_json_bytes"] > 1.5
    assert row["spliced_vs_json_encode"] > 1.0
    assert row["cached_vs_json_decode"] > 1.0


if __name__ == "__main__":
    import pytest

    raise SystemExit(pytest.main([__file__, "-q", *sys.argv[1:]]))
