"""Table VI: comparison with LLMs on EA verification.

A balanced sample of correct and incorrect predicted pairs is judged by the
simulated ChatGPT (names), by ExEA (explanation confidence), and by their
fusion (averaged confidences).  Expected shape: ExEA beats the LLM alone,
and the fusion beats both — structural and textual evidence are
complementary.
"""

import pytest

from conftest import LLM_DATASETS, LLM_MODELS, run_once
from repro.experiments import format_verification_rows, run_verification_experiment


@pytest.mark.parametrize("model_name", LLM_MODELS)
@pytest.mark.parametrize("dataset_name", LLM_DATASETS)
def test_table6_llm_verification(benchmark, model_name, dataset_name, dataset_cache, model_cache, bench_scale):
    dataset = dataset_cache(dataset_name)
    model = model_cache(model_name, dataset_name)

    rows = run_once(
        benchmark, lambda: run_verification_experiment(model, dataset, bench_scale)
    )
    print()
    print(format_verification_rows(rows, title=f"[Table VI] {model_name} on {dataset_name}"))
    by_method = {row.method: row for row in rows}
    assert by_method["ChatGPT + ExEA"].f1 >= min(by_method["ChatGPT"].f1, by_method["ExEA"].f1) - 0.05
