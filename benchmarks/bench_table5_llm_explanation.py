"""Table V: comparison with LLMs on explanation generation.

ExEA vs ChatGPT (perturb) vs ChatGPT (match) — the LLM here is the
simulated, name-based oracle described in DESIGN.md.  The paper runs this
on ZH-EN and DBP-WD with MTransE and Dual-AMN.  Expected shape: ExEA best,
ChatGPT (match) close behind (it follows the same matching principle),
ChatGPT (perturb) clearly worse.
"""

import pytest

from conftest import LLM_DATASETS, LLM_MODELS, run_once
from repro.experiments import format_explanation_rows, run_llm_explanation_experiment


@pytest.mark.parametrize("model_name", LLM_MODELS)
@pytest.mark.parametrize("dataset_name", LLM_DATASETS)
def test_table5_llm_explanation(benchmark, model_name, dataset_name, dataset_cache, model_cache, bench_scale):
    dataset = dataset_cache(dataset_name)
    model = model_cache(model_name, dataset_name)

    rows = run_once(
        benchmark, lambda: run_llm_explanation_experiment(model, dataset, bench_scale)
    )
    print()
    print(format_explanation_rows(rows, title=f"[Table V] {model_name} on {dataset_name}"))
    assert {row.method for row in rows} == {"ChatGPT (perturb)", "ChatGPT (match)", "ExEA"}
