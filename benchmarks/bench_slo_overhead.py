"""Micro-benchmark: the cost of the PR-10 SLO plane on the serving path.

Two measurements, both on the ZH-EN mixed workload:

* ``test_tail_sampling_overhead`` — the same traced replay driven
  through :class:`ExEAClient` twice: head-based tracing only (the PR-7
  baseline) vs tail-based sampling tracing 100% of requests
  (``TailSampler``, keep-on-slow/error/retry plus a 5% healthy
  baseline).  Tail sampling only ever *observes* completions — the row
  asserts results stay bit-identical and the warm replay keeps at least
  half the baseline throughput (in practice the overhead is a counter
  bump and an occasional ring pin per request).
* the same row records the SLO engine's evaluation rate: how many
  observe+evaluate cycles per second the burn-rate math sustains over a
  live stats snapshot with the stock objectives — the doctor and the
  cluster client run this on every ``stats_snapshot()``.

Results are written to ``BENCH_service.json`` (key ``ZH-EN-slo``).

Run directly (``python bench_slo_overhead.py [--quick]``) or via pytest.
``--quick`` is the CI smoke mode: tiny workload, no numeric assertions,
no artifact writes.
"""

import json
import sys
import time
from pathlib import Path

from conftest import record_fresh_row, run_once
from repro.core import ExEAConfig, ExplanationConfig
from repro.datasets import replay_workload
from repro.experiments import run_metadata, sample_correct_pairs
from repro.service import (
    CONFIDENCE,
    EXPLAIN,
    ExEAClient,
    ExplanationService,
    ServiceConfig,
)
from repro.service.observability import (
    BurnRateAlerter,
    SLOEngine,
    TailSampleConfig,
    TailSampler,
    default_objectives,
)

ARTIFACT = Path(__file__).parent / "BENCH_service.json"

NUM_REQUESTS = 2000
SKEW = 1.0
MAX_HOPS = 2
#: Healthy-baseline fraction of fast traces the tail sampler keeps.
KEEP_FAST = 0.05
#: observe+evaluate cycles measured for the SLO engine rate.
SLO_CYCLES = 2000


def _write_row(key: str, row: dict) -> None:
    existing = {}
    if ARTIFACT.exists():
        existing = json.loads(ARTIFACT.read_text())
    existing[key] = {**row, "meta": run_metadata()}
    ARTIFACT.write_text(json.dumps(existing, indent=2, sort_keys=True))


def test_tail_sampling_overhead(benchmark, dataset_cache, model_cache, bench_scale, quick):
    dataset = dataset_cache("ZH-EN")
    model = model_cache("Dual-AMN", "ZH-EN")
    pairs = sample_correct_pairs(
        model, dataset, bench_scale.explanation_sample, seed=bench_scale.seed
    )
    num_requests = 200 if quick else NUM_REQUESTS
    workload = replay_workload(
        pairs, num_requests, seed=bench_scale.seed, skew=SKEW, kinds=(EXPLAIN, CONFIDENCE)
    )
    unique_pairs = sorted({(source, target) for _, source, target in workload})
    exea_config = ExEAConfig(explanation=ExplanationConfig(max_hops=MAX_HOPS))
    config = ServiceConfig(max_batch_size=32, max_wait_ms=2.0, num_workers=2)
    slo_cycles = 200 if quick else SLO_CYCLES

    def replay_traced(sampler: TailSampler | None):
        """Fresh service; cold pass, timed warm traced pass, result sample."""
        service = ExplanationService(model, dataset, config, exea_config=exea_config)
        with service:
            client = ExEAClient(service, tail_sampler=sampler)
            for kind, source, target in workload:  # cold: populate the cache
                client.traced(kind, source, target)
            start = time.perf_counter()
            results = [
                client.traced(kind, source, target)[0] for kind, source, target in workload
            ]
            warm_seconds = time.perf_counter() - start
            sample = {pair: client.explain(*pair) for pair in unique_pairs}
            stats = service.stats.snapshot()
        return warm_seconds, results, sample, stats

    def measure():
        base_seconds, base_results, base_sample, stats = replay_traced(None)
        sampler = TailSampler(
            TailSampleConfig(trace_fraction=1.0, slow_ms=250.0, keep_fast_fraction=KEEP_FAST)
        )
        tail_seconds, tail_results, tail_sample, _ = replay_traced(sampler)
        counters = sampler.snapshot()["counters"]
        kept_total = sum(
            counters[key]
            for key in ("kept_slow", "kept_error", "kept_retry", "kept_baseline")
        )

        # The burn-rate math the cluster client / doctor runs per snapshot.
        engine = SLOEngine(default_objectives())
        alerter = BurnRateAlerter()
        start = time.perf_counter()
        for _ in range(slo_cycles):
            engine.observe(stats)
            alerter.update(engine.evaluate())
        slo_seconds = time.perf_counter() - start

        return {
            "workload": "ZH-EN-slo",
            "max_hops": MAX_HOPS,
            "model": model.name,
            "kinds": [EXPLAIN, CONFIDENCE],
            "num_requests": len(workload),
            "num_unique_pairs": len(unique_pairs),
            "skew": SKEW,
            "baseline_warm_seconds": base_seconds,
            "baseline_warm_rps": len(workload) / base_seconds,
            "tail_warm_seconds": tail_seconds,
            "tail_warm_rps": len(workload) / tail_seconds,
            # warm_rps is the tail-sampled figure so the CI tripwire
            # (tools/check_bench.py) watches the instrumented path.
            "warm_rps": len(workload) / tail_seconds,
            "warm_seconds": tail_seconds,
            "tail_overhead_factor": tail_seconds / max(base_seconds, 1e-12),
            "tail_keep_fast_fraction": KEEP_FAST,
            "tail_counters": counters,
            "tail_kept_total": kept_total,
            "slo_cycles": slo_cycles,
            "slo_evals_per_second": slo_cycles / max(slo_seconds, 1e-12),
            "requests_identical": base_results == tail_results,
            "pairs_with_identical_results": sum(
                1 for pair in unique_pairs if base_sample[pair] == tail_sample[pair]
            ),
        }

    row = run_once(benchmark, measure)
    print()
    print(
        f"[service-slo] baseline warm {row['baseline_warm_rps']:.0f} req/s, "
        f"tail-sampled warm {row['tail_warm_rps']:.0f} req/s "
        f"(overhead {row['tail_overhead_factor']:.2f}x, kept "
        f"{row['tail_kept_total']}/{row['tail_counters']['started']} traces); "
        f"SLO engine {row['slo_evals_per_second']:.0f} evals/s "
        f"({row['pairs_with_identical_results']}/{row['num_unique_pairs']} identical)"
    )

    # The hard invariant at any speed: tail sampling observes, it never
    # changes a result bit.
    assert row["requests_identical"]
    assert row["pairs_with_identical_results"] == row["num_unique_pairs"]
    # Every trace was started (fraction 1.0) and keeps stay a small subset.
    assert row["tail_counters"]["started"] == row["num_requests"] * 2
    assert row["tail_kept_total"] <= row["tail_counters"]["started"]
    record_fresh_row(row["workload"], row)
    if quick:
        return  # smoke mode: no numeric assertions, no artifact writes
    _write_row(row["workload"], row)
    # Acceptance: observing completions costs at most half the warm
    # throughput (generous bound; the steady-state overhead is far lower).
    assert row["tail_warm_rps"] >= 0.5 * row["baseline_warm_rps"]
    assert row["slo_evals_per_second"] > 100


if __name__ == "__main__":
    import pytest

    raise SystemExit(pytest.main([__file__, "-q", *sys.argv[1:]]))
