"""Micro-benchmark: explanation service throughput vs direct engine calls.

Replays a deterministic Zipf-skewed explain workload (the ZH-EN Fig. 4
population) three ways:

* **direct**   — one engine call per request, no service, no result cache
  (the pre-service consumption model);
* **cold**     — through the service with an empty result cache: first
  sight of each pair computes, repeats hit;
* **warm**     — the same replay again on the now-populated cache.

Results are written to ``BENCH_service.json`` next to this file.  The
acceptance bar of the service PR: warm-cache replay sustains at least 5x
the throughput of uncached direct calls, with bit-identical results.
"""

import json
import time
from pathlib import Path

from conftest import run_once
from repro.core import ExEA, ExEAConfig, ExplanationConfig
from repro.datasets import replay_workload
from repro.experiments import sample_correct_pairs
from repro.service import (
    ExEAClient,
    ExplanationService,
    ServiceConfig,
    replay_concurrently,
)

ARTIFACT = Path(__file__).parent / "BENCH_service.json"

NUM_REQUESTS = 2000
NUM_CLIENTS = 8
SKEW = 1.0
#: Second-order candidates (the heavier Fig. 4 ZH-EN workload).
MAX_HOPS = 2


def test_service_throughput(benchmark, dataset_cache, model_cache, bench_scale):
    dataset = dataset_cache("ZH-EN")
    model = model_cache("Dual-AMN", "ZH-EN")
    pairs = sample_correct_pairs(
        model, dataset, bench_scale.explanation_sample, seed=bench_scale.seed
    )
    workload = replay_workload(pairs, NUM_REQUESTS, seed=bench_scale.seed, skew=SKEW)
    unique_pairs = sorted({(source, target) for _, source, target in workload})
    exea_config = ExEAConfig(explanation=ExplanationConfig(max_hops=MAX_HOPS))

    def measure():
        # Direct: one uncached engine call per request (shared reference,
        # exactly what callers did before the service existed).
        direct = ExEA(model, dataset, exea_config)
        reference = direct.reference_alignment()
        start = time.perf_counter()
        for _, source, target in workload:
            direct.generator.explain(source, target, reference)
        direct_seconds = time.perf_counter() - start

        config = ServiceConfig(max_batch_size=32, max_wait_ms=2.0, num_workers=2)
        service = ExplanationService(model, dataset, config, exea_config=exea_config)
        with service:
            cold_seconds = replay_concurrently(service, workload, NUM_CLIENTS)
            cold_stats = service.stats.snapshot()
            warm_seconds = replay_concurrently(service, workload, NUM_CLIENTS)
            warm_stats = service.stats.snapshot()

            # Sanity: service results are bit-identical to direct calls.
            client = ExEAClient(service)
            matching = sum(
                1
                for pair in unique_pairs
                if client.explain(*pair) == direct.generator.explain(*pair, reference)
            )

        warm_hits = warm_stats["cache_hits"] - cold_stats["cache_hits"]
        warm_lookups = warm_hits + warm_stats["cache_misses"] - cold_stats["cache_misses"]
        return {
            "workload": "ZH-EN",
            "max_hops": MAX_HOPS,
            "model": model.name,
            "num_requests": len(workload),
            "num_unique_pairs": len(unique_pairs),
            "num_clients": NUM_CLIENTS,
            "skew": SKEW,
            "direct_seconds": direct_seconds,
            "direct_rps": len(workload) / direct_seconds,
            "cold_seconds": cold_seconds,
            "cold_rps": len(workload) / cold_seconds,
            "cold_hit_rate": cold_stats["cache_hit_rate"],
            "warm_seconds": warm_seconds,
            "warm_rps": len(workload) / warm_seconds,
            "warm_hit_rate": warm_hits / warm_lookups if warm_lookups else 0.0,
            "warm_vs_direct_speedup": direct_seconds / max(warm_seconds, 1e-12),
            "cold_vs_direct_speedup": direct_seconds / max(cold_seconds, 1e-12),
            "mean_batch_occupancy": warm_stats["mean_batch_occupancy"],
            "pairs_with_identical_results": matching,
        }

    row = run_once(benchmark, measure)
    print()
    print(
        f"[service] direct {row['direct_rps']:.0f} req/s, "
        f"cold {row['cold_rps']:.0f} req/s (hit rate {row['cold_hit_rate']:.2f}), "
        f"warm {row['warm_rps']:.0f} req/s (hit rate {row['warm_hit_rate']:.2f}), "
        f"warm vs direct {row['warm_vs_direct_speedup']:.1f}x "
        f"({row['pairs_with_identical_results']}/{row['num_unique_pairs']} identical)"
    )

    existing = {}
    if ARTIFACT.exists():
        existing = json.loads(ARTIFACT.read_text())
    existing[row["workload"]] = row
    ARTIFACT.write_text(json.dumps(existing, indent=2, sort_keys=True))

    assert row["pairs_with_identical_results"] == row["num_unique_pairs"]
    # Acceptance: warm-cache replay serves the ZH-EN workload at >= 5x the
    # throughput of uncached direct engine calls.
    assert row["warm_vs_direct_speedup"] >= 5.0
