"""Micro-benchmark: explanation service throughput vs direct engine calls.

Two measurements, both on the ZH-EN second-order workload:

* ``test_service_throughput`` — the PR-2 acceptance bar: a Zipf-skewed
  explain-only replay served **direct** (one engine call per request),
  **cold** (service, empty result cache) and **warm** (same replay on the
  populated cache); warm must sustain >= 5x direct throughput with
  bit-identical results.
* ``test_service_mixed_dispatcher_vs_per_worker`` — the PR-3 acceptance
  bar: a mixed explain+confidence replay served by the central
  dispatcher (cross-worker per-operation batches + batched ADG/confidence
  path) vs the PR-2 per-worker micro-batcher baseline
  (``ServiceConfig(scheduler="per-worker")``), cold and warm, best of
  ``REPEATS`` runs each.  Results must be bit-identical across modes and
  the dispatcher must win on both cold and warm replays.
* ``test_service_remote_vs_inprocess`` — the PR-4/PR-6 transport row: the
  same replay served by the in-process sharded service vs a
  process-per-shard cluster (real ``python -m repro.service serve``
  subprocesses fed a pickled snapshot of the same model) at the same
  shard count, measured under BOTH wires: the v1 JSON/pooled transport
  and the v2 binary/multiplexed one.  Results must be bit-identical
  across transports and codecs; the PR-6 acceptance bar is the warm
  binary+mux replay sustaining >= 5x the v1 JSON throughput.
* ``test_service_cluster_failover`` — the PR-5 control-plane row: the
  replay served by a replicated cluster (2 shards x 2 replica
  subprocesses, health-checked, load-aware routing), then repeated while
  one replica is SIGKILLed mid-flight.  The killed replay must complete
  with zero failed requests and bit-identical results; the row records
  the replicated-read throughput, the killed-replay throughput, and the
  time the failure detector took to take the dead replica out of the
  routing table.

Results are written to ``BENCH_service.json`` next to this file (keys
``ZH-EN``, ``ZH-EN-mixed``, ``ZH-EN-remote`` and ``ZH-EN-cluster``).

Run directly (``python bench_service_throughput.py [--quick]``) or via
pytest.  ``--quick`` is the CI smoke mode: tiny workloads, no numeric
assertions, no artifact writes — it only proves the harness still runs.
"""

import json
import sys
import time
from pathlib import Path

from conftest import record_fresh_row, run_once
from repro.core import ExEA, ExEAConfig, ExplanationConfig
from repro.datasets import replay_workload
from repro.experiments import run_metadata, sample_correct_pairs
from repro.service import (
    CONFIDENCE,
    EXPLAIN,
    ExEAClient,
    ExplanationService,
    LocalShardCluster,
    ServiceConfig,
    ShardedExEAClient,
    ShardedExplanationService,
    replay_cluster_concurrently,
    replay_concurrently,
    replay_remote_concurrently,
)

ARTIFACT = Path(__file__).parent / "BENCH_service.json"

NUM_REQUESTS = 2000
NUM_CLIENTS = 8
SKEW = 1.0
#: Second-order candidates (the heavier Fig. 4 ZH-EN workload).
MAX_HOPS = 2
#: Best-of runs per scheduler mode in the mixed comparison.  Warm replays
#: are cache-hit dominated (both schedulers serve them from the submit
#: fast path), so several repeats are needed to keep scheduling noise out
#: of the warm comparison.
REPEATS = 5


def _write_row(key: str, row: dict) -> None:
    existing = {}
    if ARTIFACT.exists():
        existing = json.loads(ARTIFACT.read_text())
    existing[key] = {**row, "meta": run_metadata()}
    ARTIFACT.write_text(json.dumps(existing, indent=2, sort_keys=True))


def test_service_throughput(benchmark, dataset_cache, model_cache, bench_scale, quick):
    dataset = dataset_cache("ZH-EN")
    model = model_cache("Dual-AMN", "ZH-EN")
    pairs = sample_correct_pairs(
        model, dataset, bench_scale.explanation_sample, seed=bench_scale.seed
    )
    num_requests = 200 if quick else NUM_REQUESTS
    workload = replay_workload(pairs, num_requests, seed=bench_scale.seed, skew=SKEW)
    unique_pairs = sorted({(source, target) for _, source, target in workload})
    exea_config = ExEAConfig(explanation=ExplanationConfig(max_hops=MAX_HOPS))

    def measure():
        # Direct: one uncached engine call per request (shared reference,
        # exactly what callers did before the service existed).
        direct = ExEA(model, dataset, exea_config)
        reference = direct.reference_alignment()
        start = time.perf_counter()
        for _, source, target in workload:
            direct.generator.explain(source, target, reference)
        direct_seconds = time.perf_counter() - start

        config = ServiceConfig(max_batch_size=32, max_wait_ms=2.0, num_workers=2)
        service = ExplanationService(model, dataset, config, exea_config=exea_config)
        with service:
            cold_seconds = replay_concurrently(service, workload, NUM_CLIENTS)
            cold_stats = service.stats.snapshot()
            warm_seconds = replay_concurrently(service, workload, NUM_CLIENTS)
            warm_stats = service.stats.snapshot()

            # Sanity: service results are bit-identical to direct calls.
            client = ExEAClient(service)
            matching = sum(
                1
                for pair in unique_pairs
                if client.explain(*pair) == direct.generator.explain(*pair, reference)
            )

        warm_hits = warm_stats["cache_hits"] - cold_stats["cache_hits"]
        warm_lookups = warm_hits + warm_stats["cache_misses"] - cold_stats["cache_misses"]
        return {
            "workload": "ZH-EN",
            "max_hops": MAX_HOPS,
            "model": model.name,
            "num_requests": len(workload),
            "num_unique_pairs": len(unique_pairs),
            "num_clients": NUM_CLIENTS,
            "skew": SKEW,
            "direct_seconds": direct_seconds,
            "direct_rps": len(workload) / direct_seconds,
            "cold_seconds": cold_seconds,
            "cold_rps": len(workload) / cold_seconds,
            "cold_hit_rate": cold_stats["cache_hit_rate"],
            "warm_seconds": warm_seconds,
            "warm_rps": len(workload) / warm_seconds,
            "warm_hit_rate": warm_hits / warm_lookups if warm_lookups else 0.0,
            "warm_vs_direct_speedup": direct_seconds / max(warm_seconds, 1e-12),
            "cold_vs_direct_speedup": direct_seconds / max(cold_seconds, 1e-12),
            "mean_batch_occupancy": warm_stats["mean_batch_occupancy"],
            "pairs_with_identical_results": matching,
        }

    row = run_once(benchmark, measure)
    print()
    print(
        f"[service] direct {row['direct_rps']:.0f} req/s, "
        f"cold {row['cold_rps']:.0f} req/s (hit rate {row['cold_hit_rate']:.2f}), "
        f"warm {row['warm_rps']:.0f} req/s (hit rate {row['warm_hit_rate']:.2f}), "
        f"warm vs direct {row['warm_vs_direct_speedup']:.1f}x "
        f"({row['pairs_with_identical_results']}/{row['num_unique_pairs']} identical)"
    )

    assert row["pairs_with_identical_results"] == row["num_unique_pairs"]
    record_fresh_row(row["workload"], row)
    if quick:
        return  # smoke mode: no numeric assertions, no artifact writes
    _write_row(row["workload"], row)
    # Acceptance: warm-cache replay serves the ZH-EN workload at >= 5x the
    # throughput of uncached direct engine calls.
    assert row["warm_vs_direct_speedup"] >= 5.0


def test_service_mixed_dispatcher_vs_per_worker(
    benchmark, dataset_cache, model_cache, bench_scale, quick
):
    """Mixed explain+confidence replay: central dispatcher vs PR-2 baseline."""
    dataset = dataset_cache("ZH-EN")
    model = model_cache("Dual-AMN", "ZH-EN")
    pairs = sample_correct_pairs(
        model, dataset, bench_scale.explanation_sample, seed=bench_scale.seed
    )
    num_requests = 200 if quick else NUM_REQUESTS
    workload = replay_workload(
        pairs, num_requests, seed=bench_scale.seed, skew=SKEW, kinds=(EXPLAIN, CONFIDENCE)
    )
    unique_pairs = sorted({(source, target) for _, source, target in workload})
    exea_config = ExEAConfig(explanation=ExplanationConfig(max_hops=MAX_HOPS))
    repeats = 1 if quick else REPEATS

    def run_once_in(scheduler: str):
        """One fresh service: cold replay, warm replay, result sample."""
        config = ServiceConfig(
            max_batch_size=32, max_wait_ms=2.0, num_workers=2, scheduler=scheduler
        )
        service = ExplanationService(model, dataset, config, exea_config=exea_config)
        with service:
            cold = replay_concurrently(service, workload, NUM_CLIENTS)
            warm = replay_concurrently(service, workload, NUM_CLIENTS)
            client = ExEAClient(service)
            explains = {pair: client.explain(*pair) for pair in unique_pairs}
            confidences = {pair: client.confidence(*pair) for pair in unique_pairs}
        return cold, warm, explains, confidences

    def measure():
        # Interleave the two modes per repeat (rather than running one
        # mode's repeats back to back) so slow machine drift hits both
        # equally; report each mode's best cold/warm.
        best = {
            mode: [float("inf"), float("inf"), None, None]
            for mode in ("per-worker", "dispatcher")
        }
        for _ in range(repeats):
            for mode in best:
                cold, warm, explains, confidences = run_once_in(mode)
                entry = best[mode]
                entry[0] = min(entry[0], cold)
                entry[1] = min(entry[1], warm)
                entry[2], entry[3] = explains, confidences
        pw_cold, pw_warm, pw_explains, pw_confidences = best["per-worker"]
        dp_cold, dp_warm, dp_explains, dp_confidences = best["dispatcher"]

        matching = sum(
            1
            for pair in unique_pairs
            if dp_explains[pair] == pw_explains[pair]
            and dp_confidences[pair] == pw_confidences[pair]
        )
        return {
            "workload": "ZH-EN-mixed",
            "max_hops": MAX_HOPS,
            "model": model.name,
            "kinds": [EXPLAIN, CONFIDENCE],
            "num_requests": len(workload),
            "num_unique_pairs": len(unique_pairs),
            "num_clients": NUM_CLIENTS,
            "skew": SKEW,
            "repeats": repeats,
            "per_worker_cold_seconds": pw_cold,
            "per_worker_warm_seconds": pw_warm,
            "per_worker_cold_rps": len(workload) / pw_cold,
            "per_worker_warm_rps": len(workload) / pw_warm,
            "dispatcher_cold_seconds": dp_cold,
            "dispatcher_warm_seconds": dp_warm,
            "dispatcher_cold_rps": len(workload) / dp_cold,
            "dispatcher_warm_rps": len(workload) / dp_warm,
            "dispatcher_vs_per_worker_cold_speedup": pw_cold / max(dp_cold, 1e-12),
            "dispatcher_vs_per_worker_warm_speedup": pw_warm / max(dp_warm, 1e-12),
            "pairs_with_identical_results": matching,
        }

    row = run_once(benchmark, measure)
    print()
    print(
        f"[service-mixed] per-worker cold {row['per_worker_cold_rps']:.0f} req/s / "
        f"warm {row['per_worker_warm_rps']:.0f} req/s; "
        f"dispatcher cold {row['dispatcher_cold_rps']:.0f} req/s / "
        f"warm {row['dispatcher_warm_rps']:.0f} req/s; "
        f"speedup cold {row['dispatcher_vs_per_worker_cold_speedup']:.2f}x, "
        f"warm {row['dispatcher_vs_per_worker_warm_speedup']:.2f}x "
        f"({row['pairs_with_identical_results']}/{row['num_unique_pairs']} identical)"
    )

    assert row["pairs_with_identical_results"] == row["num_unique_pairs"]
    record_fresh_row(row["workload"], row)
    if quick:
        return  # smoke mode: no numeric assertions, no artifact writes
    _write_row(row["workload"], row)
    # Acceptance: the batched-ADG dispatcher beats the PR-2 per-worker
    # path on both the cold and the warm replay (the recorded row carries
    # the actual speedups).  Warm replays are cache-hit dominated, so the
    # warm bound keeps a small margin for pure scheduling noise.
    assert row["dispatcher_vs_per_worker_cold_speedup"] >= 1.0
    assert row["dispatcher_vs_per_worker_warm_speedup"] >= 0.95


def test_service_remote_vs_inprocess(benchmark, dataset_cache, model_cache, bench_scale, quick):
    """Mixed replay, in-process sharded service vs a process-per-shard cluster."""
    dataset = dataset_cache("ZH-EN")
    model = model_cache("Dual-AMN", "ZH-EN")
    pairs = sample_correct_pairs(
        model, dataset, bench_scale.explanation_sample, seed=bench_scale.seed
    )
    num_requests = 200 if quick else NUM_REQUESTS
    num_shards = 2
    workload = replay_workload(
        pairs, num_requests, seed=bench_scale.seed, skew=SKEW, kinds=(EXPLAIN, CONFIDENCE)
    )
    unique_pairs = sorted({(source, target) for _, source, target in workload})
    exea_config = ExEAConfig(explanation=ExplanationConfig(max_hops=MAX_HOPS))
    config = ServiceConfig(
        max_batch_size=32, max_wait_ms=2.0, num_workers=2, num_shards=num_shards
    )

    def measure():
        # In-process sharded baseline: same shard count, same router.
        local = ShardedExplanationService(model, dataset, config, exea_config=exea_config)
        with local:
            local_cold = replay_concurrently(local, workload, NUM_CLIENTS)
            local_warm = replay_concurrently(local, workload, NUM_CLIENTS)
            client = ShardedExEAClient(local)
            local_explains = {pair: client.explain(*pair) for pair in unique_pairs}
            local_confidences = {pair: client.confidence(*pair) for pair in unique_pairs}

        # Remote: one real server subprocess per shard, same model bytes
        # (pickled snapshot), same CRC-32 routing, traffic over TCP —
        # once per wire: the v1 JSON/pooled transport, then the v2
        # binary/multiplexed transport against the same server build.
        per_wire = {}
        for label, transport in (
            ("json", {"wire": "json", "mux": False}),
            ("binary", {"wire": "binary", "mux": True}),
        ):
            with LocalShardCluster(
                model, dataset, num_shards=num_shards, service_config=config,
                exea_config=exea_config, **transport,
            ) as cluster:
                cold = replay_remote_concurrently(cluster.client, workload, NUM_CLIENTS)
                warm = replay_remote_concurrently(cluster.client, workload, NUM_CLIENTS)
                explains = cluster.client.explain_many(unique_pairs)
                confidences = {
                    pair: cluster.client.confidence(*pair) for pair in unique_pairs
                }
                wire_bytes = cluster.client.wire_snapshot()["overall"]
            matching = sum(
                1
                for pair in unique_pairs
                if explains[pair] == local_explains[pair]
                and confidences[pair] == local_confidences[pair]
            )
            per_wire[label] = {
                "cold_seconds": cold,
                "warm_seconds": warm,
                "cold_rps": len(workload) / cold,
                "warm_rps": len(workload) / warm,
                "bytes_sent": wire_bytes["bytes_sent"],
                "bytes_received": wire_bytes["bytes_received"],
                "pairs_with_identical_results": matching,
            }

        json_row, binary_row = per_wire["json"], per_wire["binary"]
        return {
            "workload": "ZH-EN-remote",
            "max_hops": MAX_HOPS,
            "model": model.name,
            "kinds": [EXPLAIN, CONFIDENCE],
            "num_requests": len(workload),
            "num_unique_pairs": len(unique_pairs),
            "num_clients": NUM_CLIENTS,
            "num_shards": num_shards,
            "skew": SKEW,
            "inprocess_cold_seconds": local_cold,
            "inprocess_warm_seconds": local_warm,
            "inprocess_cold_rps": len(workload) / local_cold,
            "inprocess_warm_rps": len(workload) / local_warm,
            # The current default transport (binary + mux) keeps the
            # historic remote_* keys so the row stays comparable over time.
            "remote_cold_seconds": binary_row["cold_seconds"],
            "remote_warm_seconds": binary_row["warm_seconds"],
            "remote_cold_rps": binary_row["cold_rps"],
            "remote_warm_rps": binary_row["warm_rps"],
            "remote_vs_inprocess_cold": local_cold / max(binary_row["cold_seconds"], 1e-12),
            "remote_vs_inprocess_warm": local_warm / max(binary_row["warm_seconds"], 1e-12),
            "wire": per_wire,
            "binary_vs_json_cold_speedup": (
                json_row["cold_seconds"] / max(binary_row["cold_seconds"], 1e-12)
            ),
            "binary_vs_json_warm_speedup": (
                json_row["warm_seconds"] / max(binary_row["warm_seconds"], 1e-12)
            ),
            "pairs_with_identical_results": min(
                json_row["pairs_with_identical_results"],
                binary_row["pairs_with_identical_results"],
            ),
        }

    row = run_once(benchmark, measure)
    print()
    print(
        f"[service-remote] in-process cold {row['inprocess_cold_rps']:.0f} req/s / "
        f"warm {row['inprocess_warm_rps']:.0f} req/s; "
        f"json cold {row['wire']['json']['cold_rps']:.0f} req/s / "
        f"warm {row['wire']['json']['warm_rps']:.0f} req/s; "
        f"binary cold {row['wire']['binary']['cold_rps']:.0f} req/s / "
        f"warm {row['wire']['binary']['warm_rps']:.0f} req/s "
        f"(binary/json cold {row['binary_vs_json_cold_speedup']:.2f}x, "
        f"warm {row['binary_vs_json_warm_speedup']:.2f}x; "
        f"{row['pairs_with_identical_results']}/{row['num_unique_pairs']} identical)"
    )

    # The hard invariant at any speed: neither the process boundary nor
    # the codec choice may change a single result bit.
    assert row["pairs_with_identical_results"] == row["num_unique_pairs"]
    record_fresh_row(row["workload"], row)
    if quick:
        return  # smoke mode: no numeric assertions, no artifact writes
    _write_row(row["workload"], row)
    # Absolute localhost TCP timings are too machine-dependent to assert
    # on, but the codecs race each other on the same machine in the same
    # run: the binary+mux transport must serve the warm replay at >= 5x
    # the v1 JSON/pooled throughput.
    assert row["binary_vs_json_warm_speedup"] >= 5.0
    assert row["remote_cold_rps"] > 0 and row["remote_warm_rps"] > 0


def test_service_cluster_failover(benchmark, dataset_cache, model_cache, bench_scale, quick):
    """Replicated cluster: read throughput + zero-failure recovery from a kill."""
    import threading

    from repro.datasets import shard_workload
    from repro.service import ReplicatedLocalCluster, ShardedExEAClient

    dataset = dataset_cache("ZH-EN")
    model = model_cache("Dual-AMN", "ZH-EN")
    pairs = sample_correct_pairs(
        model, dataset, bench_scale.explanation_sample, seed=bench_scale.seed
    )
    num_requests = 200 if quick else NUM_REQUESTS
    num_shards, num_replicas = 2, 2
    workload = replay_workload(
        pairs, num_requests, seed=bench_scale.seed, skew=SKEW, kinds=(EXPLAIN, CONFIDENCE)
    )
    unique_pairs = sorted({(source, target) for _, source, target in workload})
    exea_config = ExEAConfig(explanation=ExplanationConfig(max_hops=MAX_HOPS))
    config = ServiceConfig(
        max_batch_size=32, max_wait_ms=2.0, num_workers=2, num_shards=num_shards
    )

    def measure():
        # In-process sharded reference results (the bit-identical oracle).
        local = ShardedExplanationService(model, dataset, config, exea_config=exea_config)
        with local:
            client = ShardedExEAClient(local)
            local_explains = {pair: client.explain(*pair) for pair in unique_pairs}
            local_confidences = {pair: client.confidence(*pair) for pair in unique_pairs}

        with ReplicatedLocalCluster(
            model,
            dataset,
            num_shards=num_shards,
            num_replicas=num_replicas,
            service_config=config,
            exea_config=exea_config,
            probe_interval=0.1,
        ) as cluster:
            cluster_client = cluster.client
            # Replicated-read throughput, cold and warm (each replica keeps
            # its own cache, so "warm" warms whichever replicas serve).
            cold_seconds = replay_cluster_concurrently(cluster_client, workload, NUM_CLIENTS)
            warm_seconds = replay_cluster_concurrently(cluster_client, workload, NUM_CLIENTS)

            # Kill one replica mid-replay; the replay must finish with every
            # result (failover) and the detector must evict the dead replica.
            slices = [part for part in shard_workload(workload, NUM_CLIENTS) if part]
            results: list = [None] * len(slices)
            failures: list = []

            def run(index: int, part) -> None:
                try:
                    results[index] = cluster_client.replay(part, timeout=120)
                except BaseException as error:  # noqa: BLE001 - recorded below
                    failures.append(error)

            threads = [
                threading.Thread(target=run, args=(index, part), daemon=True)
                for index, part in enumerate(slices)
            ]
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            # Kill only once traffic is actually in flight — otherwise the
            # row would measure a replay against an already-dead replica
            # instead of a mid-replay SIGKILL with data-path failover.
            routed_deadline = time.monotonic() + 30
            while time.monotonic() < routed_deadline:
                snapshot = cluster_client.routing_snapshot()
                if any(row["routed"] or row["inflight"] for row in snapshot["replicas"]):
                    break
                time.sleep(0.002)
            kill_time = time.perf_counter()
            cluster.kill_replica(0, 0)
            detected_seconds = None
            detect_deadline = time.monotonic() + 30
            while time.monotonic() < detect_deadline:
                if not cluster.manager.table().replicas(0)[0].healthy:
                    detected_seconds = time.perf_counter() - kill_time
                    break
                time.sleep(0.005)
            for thread in threads:
                thread.join(timeout=300)
            killed_seconds = time.perf_counter() - start
            assert not failures, failures  # zero failed requests
            assert all(value is not None for value in results)

            cluster_explains = cluster_client.explain_many(unique_pairs)
            cluster_confidences = {
                pair: cluster_client.confidence(*pair) for pair in unique_pairs
            }

        matching = sum(
            1
            for pair in unique_pairs
            if cluster_explains[pair] == local_explains[pair]
            and cluster_confidences[pair] == local_confidences[pair]
        )
        return {
            "workload": "ZH-EN-cluster",
            "max_hops": MAX_HOPS,
            "model": model.name,
            "kinds": [EXPLAIN, CONFIDENCE],
            "num_requests": len(workload),
            "num_unique_pairs": len(unique_pairs),
            "num_clients": NUM_CLIENTS,
            "num_shards": num_shards,
            "num_replicas": num_replicas,
            "skew": SKEW,
            "cold_seconds": cold_seconds,
            "cold_rps": len(workload) / cold_seconds,
            "warm_seconds": warm_seconds,
            "warm_rps": len(workload) / warm_seconds,
            "killed_replay_seconds": killed_seconds,
            "killed_replay_rps": len(workload) / killed_seconds,
            "failed_requests_during_kill": len(failures),
            "detector_seconds": detected_seconds,
            "pairs_with_identical_results": matching,
        }

    row = run_once(benchmark, measure)
    print()
    print(
        f"[service-cluster] cold {row['cold_rps']:.0f} req/s / warm {row['warm_rps']:.0f} req/s "
        f"({row['num_shards']} shards x {row['num_replicas']} replicas); "
        f"replica killed mid-replay: {row['killed_replay_rps']:.0f} req/s, "
        f"{row['failed_requests_during_kill']} failed, detector "
        f"{row['detector_seconds'] if row['detector_seconds'] is None else round(row['detector_seconds'], 3)}s "
        f"({row['pairs_with_identical_results']}/{row['num_unique_pairs']} identical)"
    )

    # Hard invariants at any speed: failover must lose nothing and change
    # no result bit.
    assert row["failed_requests_during_kill"] == 0
    assert row["pairs_with_identical_results"] == row["num_unique_pairs"]
    record_fresh_row(row["workload"], row)
    if quick:
        return  # smoke mode: no numeric assertions, no artifact writes
    _write_row(row["workload"], row)
    assert row["detector_seconds"] is not None and row["detector_seconds"] < 30
    assert row["cold_rps"] > 0 and row["warm_rps"] > 0 and row["killed_replay_rps"] > 0


if __name__ == "__main__":
    import pytest

    raise SystemExit(pytest.main([__file__, "-q", *sys.argv[1:]]))
