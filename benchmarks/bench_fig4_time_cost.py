"""Fig. 4: time cost of explanation generation for Dual-AMN on ZH-EN.

The figure compares the wall-clock time of EALime, EAShapley, Anchor, LORE
and ExEA when candidate triples are first-order (ZH-EN-1) and within the
second order (ZH-EN-2).  Expected shape: ExEA is orders of magnitude faster
than the perturbation-based baselines; LORE is the slowest.
"""

import time

import pytest

from conftest import run_once
from repro.core import ExEA, ExEAConfig, ExplanationConfig
from repro.experiments import (
    ExplanationRow,
    explanation_methods,
    format_timing_rows,
    sample_correct_pairs,
)


@pytest.mark.parametrize("max_hops", [1, 2], ids=["ZH-EN-1", "ZH-EN-2"])
def test_fig4_time_cost(benchmark, max_hops, dataset_cache, model_cache, bench_scale):
    dataset = dataset_cache("ZH-EN")
    model = model_cache("Dual-AMN", "ZH-EN")
    pairs = sample_correct_pairs(model, dataset, bench_scale.explanation_sample, seed=bench_scale.seed)
    methods = explanation_methods(model, dataset, max_hops=max_hops)
    exea = ExEA(model, dataset, ExEAConfig(explanation=ExplanationConfig(max_hops=max_hops)))

    def measure():
        rows = []
        start = time.perf_counter()
        exea_explanations = exea.explain_predictions(pairs)
        rows.append(
            ExplanationRow(
                dataset=f"ZH-EN-{max_hops}", model=model.name, method="ExEA",
                fidelity=0.0, sparsity=0.0, seconds=time.perf_counter() - start,
            )
        )
        budget = {pair: max(len(e.triples), 1) for pair, e in exea_explanations.items()}
        for name, explainer in methods.items():
            start = time.perf_counter()
            for pair in pairs:
                explainer.explain(pair[0], pair[1], budget[pair])
            rows.append(
                ExplanationRow(
                    dataset=f"ZH-EN-{max_hops}", model=model.name, method=name,
                    fidelity=0.0, sparsity=0.0, seconds=time.perf_counter() - start,
                )
            )
        return rows

    rows = run_once(benchmark, measure)
    print()
    print(format_timing_rows(rows, title=f"[Fig. 4] Explanation time, candidates within order {max_hops}"))
    exea_time = next(r.seconds for r in rows if r.method == "ExEA")
    slowest_baseline = max(r.seconds for r in rows if r.method != "ExEA")
    assert exea_time <= slowest_baseline
