"""Table VIII: EA repair under seed-alignment noise.

Same noise protocol as Table VII; the repair pipeline runs on the models
trained with the corrupted seed alignment.  Expected shape: base accuracy
drops relative to the clean setting, but ExEA still delivers a large
improvement — the repair is robust to seed noise.
"""

import pytest

from conftest import LLM_DATASETS, LLM_MODELS, run_once
from repro.experiments import format_repair_rows, run_repair_experiment


@pytest.mark.parametrize("model_name", LLM_MODELS)
@pytest.mark.parametrize("dataset_name", LLM_DATASETS)
def test_table8_noise_repair(benchmark, model_name, dataset_name, dataset_cache, model_cache):
    dataset = dataset_cache(dataset_name, noisy=True)
    model = model_cache(model_name, dataset_name, noisy=True)

    row = run_once(benchmark, lambda: run_repair_experiment(model, dataset))
    print()
    print(format_repair_rows([row], title=f"[Table VIII] {model_name} on {dataset_name} (noisy seed)"))
    assert row.repaired_accuracy >= row.base_accuracy - 0.02
