"""Shared fixtures for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper's
evaluation (see DESIGN.md for the index).  Datasets and trained base models
are cached per session so the harness spends its time on the experiment
being measured, not on repeated training.

Scale: the benchmarks run the same code paths as the paper at a reduced,
CPU-friendly size (see ``BENCH_SCALE``).  Increase ``dataset_scale`` /
sample sizes for a closer run.
"""

import json
import os
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.experiments import ExperimentScale, prepare_dataset, train_model  # noqa: E402

#: Scale used by all benchmarks (reduced from the paper's 15k-pair datasets).
BENCH_SCALE = ExperimentScale(
    dataset_scale=0.3,
    embedding_dim=24,
    explanation_sample=20,
    verification_sample=30,
    llm_sample=15,
    seed=1,
)

#: All datasets / models of the paper's evaluation.
ALL_DATASETS = ("ZH-EN", "JA-EN", "FR-EN", "DBP-WD", "DBP-YAGO")
ALL_MODELS = ("MTransE", "AlignE", "GCN-Align", "Dual-AMN")
#: Subsets used by the LLM / noise experiments (as in the paper).
LLM_DATASETS = ("ZH-EN", "DBP-WD")
LLM_MODELS = ("MTransE", "Dual-AMN")


def pytest_addoption(parser):
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help=(
            "benchmark smoke mode: tiny workloads, no numeric assertions, "
            "no artifact writes (used by the CI smoke job)"
        ),
    )


@pytest.fixture(scope="session")
def quick(request):
    """True when the harness runs in --quick smoke mode."""
    return request.config.getoption("--quick")


@pytest.fixture(scope="session")
def bench_scale():
    return BENCH_SCALE


@pytest.fixture(scope="session")
def dataset_cache():
    """Session cache of benchmark datasets keyed by (name, noisy)."""
    cache = {}

    def get(name: str, noisy: bool = False):
        key = (name, noisy)
        if key not in cache:
            cache[key] = prepare_dataset(name, BENCH_SCALE, noisy_seed=noisy)
        return cache[key]

    return get


@pytest.fixture(scope="session")
def model_cache(dataset_cache):
    """Session cache of trained base models keyed by (model, dataset, noisy)."""
    cache = {}

    def get(model_name: str, dataset_name: str, noisy: bool = False):
        key = (model_name, dataset_name, noisy)
        if key not in cache:
            dataset = dataset_cache(dataset_name, noisy)
            cache[key] = train_model(model_name, dataset, BENCH_SCALE)
        return cache[key]

    return get


def run_once(benchmark, function):
    """Run *function* exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(function, rounds=1, iterations=1, warmup_rounds=0)


def record_fresh_row(key: str, row: dict) -> None:
    """Append *row* to the ``REPRO_BENCH_FRESH_OUT`` file, when configured.

    The CI bench-smoke job points this env var at a scratch file; every
    benchmark records its freshly measured row there even in ``--quick``
    mode (which never touches the committed ``BENCH_*.json`` artifacts),
    and ``tools/check_bench.py`` then compares the fresh rows against the
    committed ones to catch order-of-magnitude performance collapses.
    """
    path = os.environ.get("REPRO_BENCH_FRESH_OUT")
    if not path:
        return
    target = Path(path)
    existing = {}
    if target.exists():
        existing = json.loads(target.read_text())
    existing[key] = row
    target.write_text(json.dumps(existing, indent=2, sort_keys=True))
