"""Table III: EA repair results (Base vs ExEA accuracy, Δacc).

Expected shape: repair improves every model on every dataset; the simpler
translation-based models (MTransE) and GCN-Align gain the most, Dual-AMN
gains the least, and repaired simple models approach the unrepaired
state-of-the-art model.
"""

import pytest

from conftest import ALL_DATASETS, ALL_MODELS, run_once
from repro.experiments import format_repair_rows, run_repair_experiment


@pytest.mark.parametrize("model_name", ALL_MODELS)
@pytest.mark.parametrize("dataset_name", ALL_DATASETS)
def test_table3_repair(benchmark, model_name, dataset_name, dataset_cache, model_cache):
    dataset = dataset_cache(dataset_name)
    model = model_cache(model_name, dataset_name)

    row = run_once(benchmark, lambda: run_repair_experiment(model, dataset))
    print()
    print(format_repair_rows([row], title=f"[Table III] {model_name} on {dataset_name}"))
    assert row.repaired_accuracy >= row.base_accuracy - 0.02
