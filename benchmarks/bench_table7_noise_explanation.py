"""Table VII: explanation generation under seed-alignment noise.

A sixth of the seed pairs are randomly disrupted (the paper corrupts 750 of
4,500) before training; explanation quality is then measured as in Table I.
Expected shape: every method degrades somewhat, ExEA remains the best —
explanation generation follows the model's (noisier) predictions and is
largely independent of the data noise.
"""

import pytest

from conftest import LLM_DATASETS, LLM_MODELS, run_once
from repro.experiments import format_explanation_rows, run_explanation_experiment


@pytest.mark.parametrize("model_name", LLM_MODELS)
@pytest.mark.parametrize("dataset_name", LLM_DATASETS)
def test_table7_noise_explanation(benchmark, model_name, dataset_name, dataset_cache, model_cache, bench_scale):
    dataset = dataset_cache(dataset_name, noisy=True)
    model = model_cache(model_name, dataset_name, noisy=True)

    def experiment():
        return run_explanation_experiment(
            model, dataset, bench_scale, max_hops=1, fidelity_mode="retrain"
        )

    rows = run_once(benchmark, experiment)
    print()
    print(format_explanation_rows(rows, title=f"[Table VII] {model_name} on {dataset_name} (noisy seed)"))
    assert any(row.method == "ExEA" for row in rows)
