"""Table II: explanation generation with candidates within the second order.

The paper runs this experiment on Dual-AMN only (the translation-based
models only use first-order triples and GCN-Align ignores relations).
EAShapley switches to its KernelSHAP estimator here, as in the paper.
Expected shape: ExEA stays high (slight drop vs first-order), baselines
degrade markedly.
"""

import pytest

from conftest import ALL_DATASETS, run_once
from repro.experiments import format_explanation_rows, run_explanation_experiment


@pytest.mark.parametrize("dataset_name", ALL_DATASETS)
def test_table2_second_order(benchmark, dataset_name, dataset_cache, model_cache, bench_scale):
    dataset = dataset_cache(dataset_name)
    model = model_cache("Dual-AMN", dataset_name)

    def experiment():
        return run_explanation_experiment(
            model, dataset, bench_scale, max_hops=2, fidelity_mode="retrain"
        )

    rows = run_once(benchmark, experiment)
    print()
    print(format_explanation_rows(rows, title=f"[Table II] Dual-AMN on {dataset_name} (second-order)"))
    assert {row.method for row in rows} >= {"ExEA", "EAShapley"}
