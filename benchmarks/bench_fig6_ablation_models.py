"""Fig. 6: variation of the repair ablation across the four models on ZH-EN.

The figure plots, per model, the accuracy drop caused by removing each
conflict resolver.  Expected shape: models with hard negative sampling
(AlignE, Dual-AMN) lose less from removing one-to-many resolution;
GCN-Align benefits most from relation-alignment conflict resolution (cr1)
because it does not model relations itself.
"""

import pytest

from conftest import ALL_MODELS, run_once
from repro.experiments import format_ablation_rows, run_ablation_experiment


@pytest.mark.parametrize("model_name", ALL_MODELS)
def test_fig6_ablation_across_models(benchmark, model_name, dataset_cache, model_cache):
    dataset = dataset_cache("ZH-EN")
    model = model_cache(model_name, "ZH-EN")

    rows = run_once(benchmark, lambda: run_ablation_experiment(model, dataset))
    print()
    print(format_ablation_rows(rows, title=f"[Fig. 6] {model_name} ablation on ZH-EN"))
    assert {row.variant for row in rows} == {"ExEA", "ExEA w/o cr1", "ExEA w/o cr2", "ExEA w/o cr3"}
