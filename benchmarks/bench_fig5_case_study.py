"""Fig. 5: case study — explanations of the four models for one source entity.

The paper renders the matching subgraphs the four models produce for the
entity "NVIDIA GeForce 400" and its (possibly wrong) predicted counterpart,
showing that simple models confuse version-sibling entities while stronger
models recover the correct alignment.  This benchmark picks a sibling-style
entity from the synthetic ZH-EN benchmark and prints each model's predicted
counterpart, whether it is correct, and the rendered explanation.
"""

from conftest import ALL_MODELS, run_once
from repro.core import ExEA


def _sibling_source(dataset) -> str:
    """A test source entity that has a version sibling (hard, GPU-series-like case)."""
    test_sources = sorted(dataset.test_sources())
    entities = dataset.kg1.entities
    for entity in test_sources:
        if f"{entity}2" in entities or (entity.endswith("2") and entity[:-1] in entities):
            return entity
    return test_sources[0]


def test_fig5_case_study(benchmark, dataset_cache, model_cache):
    dataset = dataset_cache("ZH-EN")
    source = _sibling_source(dataset)
    gold_target = next(iter(dataset.test_alignment.targets_of(source)), None)

    def build_case_study():
        report_lines = [f"[Fig. 5] Case study for source entity {source!r} (gold: {gold_target!r})"]
        for model_name in ALL_MODELS:
            model = model_cache(model_name, "ZH-EN")
            predicted = next(iter(model.predict().targets_of(source)), None)
            if predicted is None:
                report_lines.append(f"--- {model_name}: no prediction")
                continue
            exea = ExEA(model, dataset)
            explanation = exea.explain(source, predicted)
            adg = exea.build_adg(explanation)
            verdict = "correct" if predicted == gold_target else "WRONG"
            report_lines.append(f"--- {model_name}: predicts {predicted!r} ({verdict})")
            report_lines.append(explanation.render())
            report_lines.append(adg.summary())
        return "\n".join(report_lines)

    report = run_once(benchmark, build_case_study)
    print()
    print(report)
    assert "Case study" in report
