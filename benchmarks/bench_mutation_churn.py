"""Micro-benchmark: serving under live KG churn (PR-8 acceptance row).

A mixed explain+confidence replay runs against a **mutating** graph: a
deterministic write stream (triple removals on the rarest relations,
evenly spaced at 1-5% of requests) is interleaved with the reads.  Every
write advances the cache generation; what distinguishes the PR-8 data
plane is *how much of the warm cache survives each write*:

* **scoped** (``ServiceConfig(scoped_invalidation=True)``, the default) —
  only entries whose pair intersects the mutation blast radius are
  evicted, so the hot set keeps hitting between writes;
* **wholesale** (``scoped_invalidation=False``, the pre-PR-8 contract) —
  every write empties the cache and every hot pair recomputes.

The headline row (``ZH-EN-live``) records, at the 2% write rate, the
churn-phase hit rate and client-side p95 under both modes, the scoped
hit rate across the 1-5% sweep, and two bit-identity proofs:

* after the full churn replay, every unique pair served by the scoped
  service equals a **cold rebuild** on the post-mutation graphs;
* the same mutation log fanned out through a **2 shard x 2 replica
  subprocess cluster** (ordered ``mutate`` op) serves the same
  post-mutation results on BOTH wire codecs (JSON v1 and binary v2).

Acceptance: at 2% writes the scoped churn hit rate is >= 5x the
wholesale one, with all bit-identity counts full.

Run directly (``python bench_mutation_churn.py [--quick]``) or via
pytest.  ``--quick`` is the CI smoke mode: tiny workloads, no numeric
assertions, no artifact writes.
"""

import json
import sys
import time
from pathlib import Path

from conftest import run_once
from repro.core import ExEA, ExEAConfig, ExplanationConfig
from repro.datasets import replay_workload
from repro.experiments import (
    ExperimentScale,
    prepare_dataset,
    run_metadata,
    sample_correct_pairs,
    train_model,
)
from repro.kg import EADataset
from repro.service import (
    CONFIDENCE,
    EXPLAIN,
    ExEAClient,
    ExplanationService,
    MutationSpec,
    ReplicatedLocalCluster,
    ServiceConfig,
)

ARTIFACT = Path(__file__).parent / "BENCH_service.json"

NUM_REQUESTS = 1500
NUM_PAIRS = 150
MAX_HOPS = 2
#: Uniform traffic over a wide pair population: the regime where a
#: wholesale flush hurts most (no hot head re-warms the cache for free).
SKEW = 0.0
#: Explanation-heavy read mix (explain : confidence), the paper's primary
#: serving workload.  Explain entries carry the scoped win: their blast
#: radius is the structural ball only, while confidence entries are also
#: relation-seeded and churn with the functionality statistics.
KIND_WEIGHTS = (3, 1)
#: Write fractions of the churn sweep; the middle one is the headline.
WRITE_RATES = (0.01, 0.02, 0.05)
HEADLINE_RATE = 0.02
#: The live row runs on a larger graph than the table benches: blast
#: radii must be *local* (a 125-entity graph is one 2-hop ball), and the
#: paper's serving claim is about exactly that locality.
LIVE_SCALE = ExperimentScale(dataset_scale=3.0, embedding_dim=24, seed=1)
LIVE_MODEL = "MTransE"

_live_cache: dict = {}


def _live_fixtures():
    """Dataset + model at the live scale, cached for the process."""
    if not _live_cache:
        dataset = prepare_dataset("ZH-EN", LIVE_SCALE)
        _live_cache["dataset"] = dataset
        _live_cache["model"] = train_model(LIVE_MODEL, dataset, LIVE_SCALE)
    return _live_cache["dataset"], _live_cache["model"]


def _write_row(key: str, row: dict) -> None:
    existing = {}
    if ARTIFACT.exists():
        existing = json.loads(ARTIFACT.read_text())
    existing[key] = {**row, "meta": run_metadata()}
    ARTIFACT.write_text(json.dumps(existing, indent=2, sort_keys=True))


def _dataset_copy(dataset):
    """A private copy whose graphs the churn replay may mutate freely."""
    return EADataset(
        dataset.kg1.copy(),
        dataset.kg2.copy(),
        dataset.train_alignment,
        dataset.test_alignment,
        name=dataset.name,
    )


def _mutation_stream(dataset, count: int) -> list[MutationSpec]:
    """*count* deterministic removals, rarest relations first.

    Mutating low-carrier relations keeps the relation-seeded confidence
    blast radius local — which is the realistic churn shape (live updates
    touch specific facts, not the graph's backbone relations) and what
    scoped invalidation is built to exploit.
    """
    kg = dataset.kg1
    relations = sorted(kg.relations, key=lambda r: (len(kg.triples_with_relation(r)), r))
    specs: list[MutationSpec] = []
    for relation in relations:
        for triple in sorted(kg.triples_with_relation(relation), key=lambda t: t.as_tuple()):
            specs.append(MutationSpec(op="remove", kg=1, triple=triple))
            if len(specs) == count:
                return specs
    return specs


def _interleave(workload, specs):
    """Spread the writes evenly through the reads: one event stream."""
    if not specs:
        return [("read", request) for request in workload]
    interval = max(1, len(workload) // len(specs))
    events = []
    writes = iter(specs)
    pending = next(writes, None)
    for position, request in enumerate(workload):
        events.append(("read", request))
        if pending is not None and position % interval == interval - 1:
            events.append(("write", pending))
            pending = next(writes, None)
    if pending is not None:
        events.append(("write", pending))
    return events


def _churn_once(model, dataset, exea_config, workload, specs, scoped: bool):
    """One service lifecycle: warm, churn, measure, final read sample.

    Returns churn-phase hit rate, client-side p95 (ms), elapsed seconds,
    the scoped/wholesale invalidation counters, and the post-churn value
    of every unique pair (for the bit-identity checks).
    """
    config = ServiceConfig(
        max_batch_size=32, max_wait_ms=2.0, num_workers=2, scoped_invalidation=scoped
    )
    events = _interleave(workload, specs)
    unique_pairs = sorted({(source, target) for _, source, target in workload})
    with ExplanationService(model, dataset, config, exea_config=exea_config) as service:
        client = ExEAClient(service)
        for kind, source, target in workload:  # warm every pair both ways
            client.explain(source, target)
            client.confidence(source, target)
        before = service.stats.snapshot()

        latencies = []
        start = time.perf_counter()
        for event, payload in events:
            if event == "write":
                service.mutate([payload])
                continue
            kind, source, target = payload
            began = time.perf_counter()
            if kind == EXPLAIN:
                client.explain(source, target)
            else:
                client.confidence(source, target)
            latencies.append(time.perf_counter() - began)
        elapsed = time.perf_counter() - start

        after = service.stats.snapshot()
        final = {
            pair: (client.explain(*pair), client.confidence(*pair))
            for pair in unique_pairs
        }
    hits = after["cache_hits"] - before["cache_hits"]
    lookups = hits + after["cache_misses"] - before["cache_misses"]
    latencies.sort()
    p95 = latencies[int(0.95 * (len(latencies) - 1))] if latencies else 0.0
    return {
        "hit_rate": hits / lookups if lookups else 0.0,
        "p95_ms": p95 * 1000.0,
        "seconds": elapsed,
        "rps": len(latencies) / elapsed if elapsed else 0.0,
        "invalidation": after["invalidation"],
        "final": final,
    }


def _cold_truth(model, dataset, exea_config, specs, pairs):
    """Post-mutation results computed from scratch on a fresh copy."""
    mutated = _dataset_copy(dataset)
    for spec in specs:
        kg = mutated.kg1 if spec.kg == 1 else mutated.kg2
        if spec.op == "remove":
            kg.remove_triple(spec.triple)
        else:
            kg.add_triple(spec.triple)
    cold = ExEA(model, mutated, exea_config)
    reference = cold.reference_alignment()
    return {
        pair: (cold.explain(*pair), cold.repairer.confidence(*pair, reference))
        for pair in pairs
    }


def _cluster_leg(model, dataset, exea_config, specs, truth, wire: str) -> dict:
    """Fan the same mutation log through a real subprocess cluster."""
    config = ServiceConfig(max_batch_size=32, max_wait_ms=2.0, num_workers=2)
    start = time.perf_counter()
    with ReplicatedLocalCluster(
        model,
        _dataset_copy(dataset),
        num_shards=2,
        num_replicas=2,
        service_config=config,
        exea_config=exea_config,
        wire=wire,
        mux=(wire == "binary"),
    ) as cluster:
        client = cluster.client
        for pair in truth:  # warm the remote caches pre-churn
            client.confidence(*pair)
        reports = [client.mutate([spec]) for spec in specs]
        matching = sum(
            1
            for pair, (explanation, confidence) in truth.items()
            if client.explain(*pair) == explanation
            and client.confidence(*pair) == confidence
        )
    return {
        "wire": wire,
        "seconds": time.perf_counter() - start,
        "mutations": len(reports),
        "final_seq": reports[-1]["seq"] if reports else 0,
        "replicas_applied": min((len(r["replicas_applied"]) for r in reports), default=0),
        "scoped_on_every_replica": all(r["scoped"] for r in reports),
        "pairs_with_identical_results": matching,
    }


def test_mutation_churn(benchmark, quick):
    dataset, model = _live_fixtures()
    pairs = sample_correct_pairs(
        model, dataset, 30 if quick else NUM_PAIRS, seed=LIVE_SCALE.seed
    )
    num_requests = 150 if quick else NUM_REQUESTS
    workload = replay_workload(
        pairs,
        num_requests,
        seed=LIVE_SCALE.seed,
        skew=SKEW,
        kinds=(EXPLAIN, CONFIDENCE),
        kind_weights=KIND_WEIGHTS,
    )
    unique_pairs = sorted({(source, target) for _, source, target in workload})
    exea_config = ExEAConfig(explanation=ExplanationConfig(max_hops=MAX_HOPS))

    def measure():
        sweep = {}
        headline = {}
        for rate in WRITE_RATES if not quick else (HEADLINE_RATE,):
            specs = _mutation_stream(dataset, max(1, int(len(workload) * rate)))
            scoped = _churn_once(
                model, _dataset_copy(dataset), exea_config, workload, specs, scoped=True
            )
            sweep[f"{rate:.0%}"] = {
                "writes": len(specs),
                "scoped_hit_rate": scoped["hit_rate"],
                "scoped_p95_ms": scoped["p95_ms"],
            }
            if rate == HEADLINE_RATE:
                wholesale = _churn_once(
                    model, _dataset_copy(dataset), exea_config, workload, specs, scoped=False
                )
                truth = _cold_truth(model, dataset, exea_config, specs, unique_pairs)
                headline = {
                    "writes": len(specs),
                    "scoped": scoped,
                    "wholesale": wholesale,
                    "truth": truth,
                    "specs": specs,
                }

        scoped = headline["scoped"]
        wholesale = headline["wholesale"]
        truth = headline["truth"]
        matching = sum(
            1 for pair in unique_pairs if scoped["final"][pair] == truth[pair]
        )
        matching_wholesale = sum(
            1 for pair in unique_pairs if wholesale["final"][pair] == truth[pair]
        )
        cluster_rows = [
            _cluster_leg(model, dataset, exea_config, headline["specs"], truth, wire)
            for wire in ("json", "binary")
        ]
        return {
            "workload": "ZH-EN-live",
            "model": model.name,
            "max_hops": MAX_HOPS,
            "kinds": [EXPLAIN, CONFIDENCE],
            "num_requests": len(workload),
            "num_unique_pairs": len(unique_pairs),
            "skew": SKEW,
            "write_rate": HEADLINE_RATE,
            "writes": headline["writes"],
            "scoped_hit_rate": scoped["hit_rate"],
            "scoped_p95_ms": scoped["p95_ms"],
            "scoped_rps": scoped["rps"],
            "scoped_invalidations": scoped["invalidation"]["scoped"],
            "scoped_entries_retained": scoped["invalidation"]["entries_retained"],
            "scoped_entries_dropped": scoped["invalidation"]["entries_dropped"],
            "max_blast_entities": scoped["invalidation"]["max_blast_entities"],
            "wholesale_hit_rate": wholesale["hit_rate"],
            "wholesale_p95_ms": wholesale["p95_ms"],
            "wholesale_rps": wholesale["rps"],
            "hit_rate_ratio": (
                scoped["hit_rate"] / wholesale["hit_rate"]
                if wholesale["hit_rate"]
                else float("inf")
            ),
            "pairs_with_identical_results": matching,
            "pairs_with_identical_results_wholesale": matching_wholesale,
            "write_rate_sweep": sweep,
            "cluster": cluster_rows,
        }

    row = run_once(benchmark, measure)
    print()
    ratio = row["hit_rate_ratio"]
    print(
        f"[mutation-churn] {row['writes']} writes @ {row['write_rate']:.0%}: "
        f"scoped hit {row['scoped_hit_rate']:.3f} (p95 {row['scoped_p95_ms']:.2f} ms) vs "
        f"wholesale {row['wholesale_hit_rate']:.3f} (p95 {row['wholesale_p95_ms']:.2f} ms), "
        f"ratio {ratio if ratio == float('inf') else round(ratio, 1)}x; "
        f"{row['pairs_with_identical_results']}/{row['num_unique_pairs']} identical to cold rebuild"
    )
    for leg in row["cluster"]:
        print(
            f"[mutation-churn] cluster {leg['wire']}: seq {leg['final_seq']} on "
            f">= {leg['replicas_applied']} replicas, "
            f"{leg['pairs_with_identical_results']}/{row['num_unique_pairs']} identical "
            f"({leg['seconds']:.1f}s)"
        )

    # Hard invariants at any speed: churn must not change a result bit,
    # in process or through the cluster on either codec.
    assert row["pairs_with_identical_results"] == row["num_unique_pairs"]
    assert row["pairs_with_identical_results_wholesale"] == row["num_unique_pairs"]
    for leg in row["cluster"]:
        assert leg["pairs_with_identical_results"] == row["num_unique_pairs"]
        assert leg["replicas_applied"] == 4
    if quick:
        return  # smoke mode: no numeric assertions, no artifact writes
    row.pop("truth", None)
    _write_row(row["workload"], row)
    # Acceptance: scoped invalidation keeps >= 5x the wholesale hit rate
    # under the headline churn, and every write took the scoped path.
    assert row["scoped_hit_rate"] >= 5.0 * row["wholesale_hit_rate"]
    assert row["scoped_invalidations"] == row["writes"]
    assert row["max_blast_entities"] >= 1


if __name__ == "__main__":
    import pytest

    raise SystemExit(pytest.main([__file__, "-q", *sys.argv[1:]]))
