"""Table I: explanation generation with first-order candidate triples.

Reproduces the fidelity/sparsity comparison of ExEA against EALime,
EAShapley, Anchor and LORE for every base model on every dataset.  Expected
shape: ExEA reaches the highest fidelity at comparable sparsity everywhere,
with the largest margin on GCN-Align (whose baselines cannot tell which
triples matter); EAShapley is usually the strongest baseline.
"""

import pytest

from conftest import ALL_DATASETS, ALL_MODELS, run_once
from repro.experiments import format_explanation_rows, run_explanation_experiment


@pytest.mark.parametrize("model_name", ALL_MODELS)
@pytest.mark.parametrize("dataset_name", ALL_DATASETS)
def test_table1_first_order(benchmark, model_name, dataset_name, dataset_cache, model_cache, bench_scale):
    dataset = dataset_cache(dataset_name)
    model = model_cache(model_name, dataset_name)

    def experiment():
        return run_explanation_experiment(
            model, dataset, bench_scale, max_hops=1, fidelity_mode="retrain"
        )

    rows = run_once(benchmark, experiment)
    print()
    print(format_explanation_rows(rows, title=f"[Table I] {model_name} on {dataset_name} (first-order)"))
    exea = next(row for row in rows if row.method == "ExEA")
    assert 0.0 <= exea.fidelity <= 1.0
